//! Approximate Stage-1 solver: Garg–Könemann / Fleischer multiplicative
//! weights for the maximum concurrent flow problem.
//!
//! The paper solves Stage 1 as a path-based LP. Because the allowed path
//! sets are small and explicit, the classic width-independent
//! approximation scheme applies directly: resources are the (edge, slice)
//! pairs, "paths" are (allowed path, slice) combinations, and each phase
//! routes every job's full demand along its currently cheapest
//! combination while resource lengths grow exponentially with usage.
//!
//! The result is a *feasible* fractional schedule whose concurrent
//! throughput is within a `(1 - O(epsilon))` factor of `Z*`, typically
//! orders of magnitude faster than an exact simplex solve on large
//! instances. The `ablation_gk` bench quantifies the speed/quality
//! trade-off against [`crate::stage1::solve_stage1`].

use crate::instance::Instance;
use crate::schedule::Schedule;
use std::collections::BTreeMap;

/// Parameters of the approximation scheme.
#[derive(Debug, Clone)]
pub struct GkConfig {
    /// Accuracy knob: smaller epsilon → tighter approximation, more phases
    /// (the guarantee degrades like `1 - O(epsilon)`).
    pub epsilon: f64,
    /// Safety cap on phases (the scheme terminates on its own; this guards
    /// degenerate inputs).
    pub max_phases: usize,
}

impl Default for GkConfig {
    fn default() -> Self {
        GkConfig {
            epsilon: 0.1,
            max_phases: 10_000,
        }
    }
}

/// Output of [`approx_stage1`].
#[derive(Debug, Clone)]
pub struct GkResult {
    /// A certified-feasible concurrent throughput (lower bound on `Z*`):
    /// every job can move `z_lower * D_i` under the returned schedule.
    pub z_lower: f64,
    /// The feasible fractional schedule achieving `z_lower` (scaled so the
    /// worst-off job moves exactly `z_lower * D_i`).
    pub schedule: Schedule,
    /// Number of phases executed.
    pub phases: usize,
}

/// Runs the multiplicative-weights approximation of the Stage-1 MCF.
///
/// Returns `z_lower = 0` (zero schedule) when some job has no allowed path
/// or an empty window — matching the exact solver, where such a job forces
/// `Z* = 0`.
pub fn approx_stage1(inst: &Instance, cfg: &GkConfig) -> GkResult {
    assert!(cfg.epsilon > 0.0 && cfg.epsilon < 1.0, "epsilon in (0,1)");
    let eps = cfg.epsilon;

    if inst.num_jobs() == 0 || inst.has_unschedulable_job() {
        return GkResult {
            z_lower: 0.0,
            schedule: Schedule::zero(inst),
            phases: 0,
        };
    }

    // Resource indexing over the used (edge, slice) pairs.
    let mut res_index: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    let mut caps: Vec<f64> = Vec::new();
    {
        let mut keys: Vec<&(u32, u32)> = inst.capacity_groups.keys().collect();
        keys.sort();
        for key in keys {
            res_index.insert(*key, caps.len());
            caps.push(inst.graph.wavelengths(wavesched_net::EdgeId(key.0)) as f64);
        }
    }
    let nres = caps.len();

    // Per (job, path, slice): its resource indices. Stored per job as
    // (path, slice, Vec<res>) aligned with candidate enumeration below.
    struct Cand {
        path: usize,
        slice: usize,
        res: Vec<usize>,
        len: f64,
    }
    let cands: Vec<Vec<Cand>> = (0..inst.num_jobs())
        .map(|i| {
            let mut v = Vec::new();
            for p in 0..inst.vars.paths_of(i) {
                for slice in inst.vars.window(i) {
                    let res = inst.paths[i][p]
                        .edges()
                        .iter()
                        .map(|e| res_index[&(e.0, slice as u32)])
                        .collect();
                    v.push(Cand {
                        path: p,
                        slice,
                        res,
                        len: inst.grid.len_of(slice),
                    });
                }
            }
            v
        })
        .collect();

    // Fleischer initialization.
    let delta = (1.0 + eps) / ((1.0 + eps) * nres as f64).powf(1.0 / eps);
    let mut length: Vec<f64> = caps.iter().map(|&c| delta / c).collect();
    let mut x = vec![0.0_f64; inst.vars.len()];

    let d_of = |length: &[f64]| -> f64 { length.iter().zip(&caps).map(|(l, c)| l * c).sum() };

    let mut phases = 0usize;
    while d_of(&length) < 1.0 && phases < cfg.max_phases {
        phases += 1;
        for (i, cand) in cands.iter().enumerate() {
            // Route this job's full demand this phase, piecewise along the
            // currently cheapest candidate (cost per unit volume).
            let mut remaining = inst.demands[i];
            while remaining > 1e-12 {
                let (best, cost) = cand
                    .iter()
                    .enumerate()
                    .map(|(k, c)| {
                        let s: f64 = c.res.iter().map(|&r| length[r]).sum();
                        (k, s / c.len)
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    // lint: allow(lib-unwrap, reason = "invariant: the candidate list was checked non-empty before this block")
                    .expect("invariant: non-empty candidates");
                let _ = cost;
                let c = &cand[best];
                // Volume step: bounded by the bottleneck capacity so no
                // single step overruns a resource by more than its capacity.
                let bottleneck = c.res.iter().map(|&r| caps[r]).fold(f64::INFINITY, f64::min);
                let vol = remaining.min(bottleneck * c.len);
                let units = vol / c.len;
                x[inst.vars.var(i, c.path, c.slice)] += units;
                for &r in &c.res {
                    length[r] *= 1.0 + eps * units / caps[r];
                }
                remaining -= vol;
            }
        }
    }

    // Scale to feasibility: usage may exceed capacity by the log factor.
    let mut usage = vec![0.0_f64; nres];
    for (var, job, path, slice) in inst.vars.iter() {
        if x[var] > 0.0 {
            for e in inst.paths[job][path].edges() {
                usage[res_index[&(e.0, slice as u32)]] += x[var];
            }
        }
    }
    let scale = usage
        .iter()
        .zip(&caps)
        .filter(|(u, _)| **u > 0.0)
        .map(|(u, c)| c / u)
        .fold(f64::INFINITY, f64::min);
    let scale = if scale.is_finite() {
        scale.min(1.0)
    } else {
        1.0
    };
    for v in &mut x {
        *v *= scale;
    }
    let schedule = Schedule::from_values(inst, x);

    // Certified concurrent throughput: the worst-off job's ratio. Scale the
    // schedule once more so every job moves exactly z_lower * D_i (callers
    // expect the Stage-1 semantics of a *common* factor).
    let z_lower = wavesched_lp::pos_or_zero(
        (0..inst.num_jobs())
            .map(|i| schedule.throughput(inst, i))
            .fold(f64::INFINITY, f64::min),
    );

    GkResult {
        z_lower,
        schedule,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use crate::stage1::solve_stage1;
    use wavesched_net::{abilene14, PathSet};
    use wavesched_workload::{Job, JobId, WorkloadConfig, WorkloadGenerator};

    fn abilene_instance(n: usize, seed: u64) -> Instance {
        let (g, _) = abilene14(2);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed,
            window: (4.0, 10.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(2);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(&g, &jobs, &cfg, &mut ps)
    }

    #[test]
    fn feasible_and_near_optimal() {
        for seed in [1u64, 2, 3] {
            let inst = abilene_instance(10, seed);
            let exact = solve_stage1(&inst).unwrap().z_star;
            let gk = approx_stage1(&inst, &GkConfig::default());
            assert!(
                gk.schedule.max_capacity_violation(&inst) < 1e-6,
                "seed {seed}: infeasible by {}",
                gk.schedule.max_capacity_violation(&inst)
            );
            assert!(
                gk.z_lower <= exact + 1e-6,
                "seed {seed}: gk {} above exact {exact}",
                gk.z_lower
            );
            assert!(
                gk.z_lower >= 0.5 * exact,
                "seed {seed}: gk {} too far below exact {exact}",
                gk.z_lower
            );
        }
    }

    #[test]
    fn tighter_epsilon_is_at_least_as_good() {
        let inst = abilene_instance(8, 5);
        let loose = approx_stage1(
            &inst,
            &GkConfig {
                epsilon: 0.5,
                ..Default::default()
            },
        );
        let tight = approx_stage1(
            &inst,
            &GkConfig {
                epsilon: 0.05,
                ..Default::default()
            },
        );
        assert!(tight.z_lower >= 0.9 * loose.z_lower);
        assert!(tight.phases >= loose.phases);
    }

    #[test]
    fn single_job_single_link_exact() {
        // One job on one link: GK should essentially nail Z*.
        let mut g = wavesched_net::Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let job = Job::new(JobId(0), 0.0, ns[0], ns[1], 600.0, 0.0, 4.0);
        let cfg = InstanceConfig::paper(1);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &[job], &cfg, &mut ps);
        let exact = solve_stage1(&inst).unwrap().z_star; // 1.0
        let gk = approx_stage1(
            &inst,
            &GkConfig {
                epsilon: 0.05,
                ..Default::default()
            },
        );
        assert!((exact - 1.0).abs() < 1e-6);
        assert!(gk.z_lower >= 0.85, "gk {}", gk.z_lower);
    }

    #[test]
    fn unschedulable_returns_zero() {
        let (g, nodes) = abilene14(2);
        let job = Job::new(JobId(0), 0.0, nodes[0], nodes[1], 10.0, 0.3, 0.9);
        let cfg = InstanceConfig::paper(2);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &[job], &cfg, &mut ps);
        let gk = approx_stage1(&inst, &GkConfig::default());
        assert_eq!(gk.z_lower, 0.0);
        assert_eq!(gk.phases, 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_validated() {
        let inst = abilene_instance(2, 1);
        approx_stage1(
            &inst,
            &GkConfig {
                epsilon: 1.5,
                ..Default::default()
            },
        );
    }
}
