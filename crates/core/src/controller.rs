//! The periodic network controller (paper Section II-A).
//!
//! Every τ time units the controller collects the requests that arrived in
//! the last period, runs admission control, and (re)schedules *all*
//! unfinished jobs from the current time forward — multipath, time-varying
//! assignments, full re-optimization each period. Overload is handled by
//! one of the paper's three actions ([`OverloadPolicy`]).
//!
//! The controller is deliberately I/O-free: the caller (normally
//! `wavesched-sim`) feeds it arrivals and applies the returned schedule,
//! reporting actual transfer progress back via
//! [`Controller::record_transfer`].

use crate::admission::admit_by_priority;
use crate::arena::BuildArena;
use crate::instance::{Instance, InstanceConfig};
use crate::lpdar::AdjustOrder;
use crate::pipeline::max_throughput_pipeline_in;
use crate::ret::{solve_ret_with_demands, RetConfig};
use crate::schedule::Schedule;
use crate::stage1::solve_stage1_in;
use wavesched_lp::{Basis, SimplexConfig, SolveError, SolveStats};
use wavesched_net::{Graph, PathSet};
use wavesched_obs as obs;
use wavesched_workload::{Job, JobId};

/// What the controller does when the network cannot meet every deadline
/// (`Z* < 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Action (i): reject the lowest-priority new requests (footnote 1's
    /// binary search). Admitted jobs keep full demands and deadlines.
    Reject,
    /// Action (ii): admit everything; demands are implicitly reduced to
    /// what the Stage-2/LPDAR schedule delivers (`Z_i D_i`).
    ShrinkDemands,
    /// Action (iii): admit everything and extend all end times by the
    /// smallest common factor found by RET.
    ExtendDeadlines,
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Scheduling period τ, in slice units (must be a positive integer
    /// number of slices).
    pub tau: usize,
    /// Instance construction parameters (paths per job, normalization).
    pub instance: InstanceConfig,
    /// Stage-2 fairness slack α.
    pub alpha: f64,
    /// Overload action.
    pub policy: OverloadPolicy,
    /// LPDAR visit order.
    pub order: AdjustOrder,
    /// RET settings (used by [`OverloadPolicy::ExtendDeadlines`]).
    pub ret: RetConfig,
    /// Simplex settings.
    pub lp: SimplexConfig,
}

impl ControllerConfig {
    /// A reasonable default around the paper's parameters.
    pub fn paper(w: u32) -> Self {
        ControllerConfig {
            tau: 1,
            instance: InstanceConfig::paper(w),
            alpha: 0.1,
            policy: OverloadPolicy::ShrinkDemands,
            order: AdjustOrder::Paper,
            ret: RetConfig::default(),
            lp: SimplexConfig::default(),
        }
    }
}

/// An admitted, unfinished job tracked by the controller.
#[derive(Debug, Clone)]
pub struct ActiveJob {
    /// The (possibly deadline-extended) request.
    pub job: Job,
    /// Remaining demand in normalized units.
    pub remaining: f64,
    /// Demand the network has committed to deliver (may be below the
    /// original under [`OverloadPolicy::ShrinkDemands`]).
    pub committed: f64,
}

/// The outcome of one controller invocation.
#[derive(Debug)]
pub struct InvocationResult {
    /// The instance the schedule refers to (jobs ordered as
    /// [`Controller::active`] at return time).
    pub instance: Instance,
    /// The integral (LPDAR) schedule to execute until the next invocation.
    pub schedule: Schedule,
    /// Stage-1 `Z*` over the scheduled set.
    pub z_star: f64,
    /// Ids of newly admitted requests.
    pub admitted: Vec<JobId>,
    /// Ids of rejected requests (only under [`OverloadPolicy::Reject`]).
    pub rejected: Vec<JobId>,
    /// The common deadline-extension factor applied this round (only under
    /// [`OverloadPolicy::ExtendDeadlines`]).
    pub extension: f64,
    /// Solver work performed by this invocation (all stages, probes and RET
    /// included).
    pub stats: SolveStats,
}

/// The periodic AC/scheduling controller.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    graph: Graph,
    pathset: PathSet,
    active: Vec<ActiveJob>,
    finished: Vec<JobId>,
    expired: Vec<JobId>,
    rejected_total: usize,
    /// Stage-1 optimal basis from the previous invocation; the next round's
    /// Stage 1 warm-starts from it when the job set's shape still matches
    /// (the solver falls back to a cold start otherwise).
    warm_stage1: Option<Basis>,
    /// LP-construction scratch recycled across invocations.
    arena: BuildArena,
    stats: SolveStats,
}

impl Controller {
    /// Creates a controller for a network.
    pub fn new(graph: Graph, cfg: ControllerConfig) -> Self {
        assert!(cfg.tau > 0, "tau must be positive");
        let pathset = PathSet::new(cfg.instance.paths_per_job);
        Controller {
            cfg,
            graph,
            pathset,
            active: Vec::new(),
            finished: Vec::new(),
            expired: Vec::new(),
            rejected_total: 0,
            warm_stage1: None,
            arena: BuildArena::new(),
            stats: SolveStats::default(),
        }
    }

    /// Aggregated solver work counters over every invocation so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Currently admitted, unfinished jobs.
    pub fn active(&self) -> &[ActiveJob] {
        &self.active
    }

    /// Ids of jobs that completed their committed demand.
    pub fn finished(&self) -> &[JobId] {
        &self.finished
    }

    /// Ids of jobs dropped because their window elapsed before completion.
    pub fn expired(&self) -> &[JobId] {
        &self.expired
    }

    /// Drains the finished-job log, returning the retired ids.
    ///
    /// Long replays call this every period so controller memory tracks the
    /// *active* job set instead of growing with everything ever completed;
    /// callers that never drain keep the cumulative
    /// [`finished`](Controller::finished) view unchanged.
    pub fn take_finished(&mut self) -> Vec<JobId> {
        std::mem::take(&mut self.finished)
    }

    /// Drains the expired-job log; see
    /// [`take_finished`](Controller::take_finished).
    pub fn take_expired(&mut self) -> Vec<JobId> {
        std::mem::take(&mut self.expired)
    }

    /// Total number of rejected requests so far.
    pub fn total_rejected(&self) -> usize {
        self.rejected_total
    }

    /// Reports that `amount` demand units of `job` were actually moved; the
    /// simulator calls this after executing each slice.
    pub fn record_transfer(&mut self, job: JobId, amount: f64) {
        if let Some(a) = self.active.iter_mut().find(|a| a.job.id == job) {
            a.remaining = wavesched_lp::pos_or_zero(a.remaining - amount);
        }
    }

    /// Runs one AC/scheduling invocation at time `now` (a slice boundary,
    /// multiple of τ), with the requests that arrived since the previous
    /// invocation.
    pub fn invoke(
        &mut self,
        now: f64,
        new_requests: &[Job],
    ) -> Result<InvocationResult, SolveError> {
        let _span = obs::span("invoke");
        obs::counter_add("controller.invocations", 1);
        // Retire completed jobs; expire jobs with less than a full slice of
        // window left (they can receive nothing more).
        let mut finished = std::mem::take(&mut self.finished);
        let mut expired = std::mem::take(&mut self.expired);
        self.active.retain(|a| {
            if a.remaining <= 1e-9 {
                finished.push(a.job.id);
                return false;
            }
            if a.job.end < now + 1.0 {
                expired.push(a.job.id);
                return false;
            }
            true
        });
        self.finished = finished;
        self.expired = expired;

        // Clamp surviving jobs' start times to now (they may be mid-flight).
        let mandatory: Vec<Job> = self
            .active
            .iter()
            .map(|a| {
                let mut j = a.job.clone();
                j.start = j.start.max(now);
                if j.arrival > j.start {
                    j.arrival = j.start;
                }
                j
            })
            .collect();
        let mandatory_demands: Vec<f64> = self.active.iter().map(|a| a.remaining).collect();

        // Normalize and clamp incoming requests.
        let candidates: Vec<Job> = new_requests
            .iter()
            .map(|j| {
                let mut j = j.clone();
                j.start = j.start.max(now);
                j.end = j.end.max(j.start + 1.0);
                j
            })
            .collect();

        let mut admitted: Vec<JobId> = Vec::new();
        let mut rejected: Vec<JobId> = Vec::new();
        let mut extension = 0.0_f64;

        // Admission per policy.
        let mut jobs: Vec<Job>;
        let mut demands: Vec<f64>;
        match self.cfg.policy {
            OverloadPolicy::Reject => {
                let out = admit_by_priority(
                    &self.graph,
                    &mandatory,
                    &mandatory_demands,
                    &candidates,
                    &self.cfg.instance,
                    &self.cfg.lp,
                )?;
                jobs = mandatory.clone();
                demands = mandatory_demands.clone();
                for (i, j) in candidates.iter().enumerate() {
                    if i < out.admitted_prefix {
                        admitted.push(j.id);
                        jobs.push(j.clone());
                        demands.push(self.cfg.instance.demand_units(j.size_gb));
                    } else {
                        rejected.push(j.id);
                    }
                }
                self.rejected_total += rejected.len();
            }
            OverloadPolicy::ShrinkDemands => {
                jobs = mandatory.clone();
                demands = mandatory_demands.clone();
                for j in &candidates {
                    admitted.push(j.id);
                    jobs.push(j.clone());
                    demands.push(self.cfg.instance.demand_units(j.size_gb));
                }
            }
            OverloadPolicy::ExtendDeadlines => {
                jobs = mandatory.clone();
                demands = mandatory_demands.clone();
                for j in &candidates {
                    admitted.push(j.id);
                    jobs.push(j.clone());
                    demands.push(self.cfg.instance.demand_units(j.size_gb));
                }
            }
        }

        obs::counter_add("controller.admitted", admitted.len() as u64);
        obs::counter_add("controller.rejected", rejected.len() as u64);
        obs::record("controller.jobs_scheduled", jobs.len() as u64);

        // Solver work this invocation; folded into the lifetime counters on
        // every exit path.
        let mut inv_stats = SolveStats::default();

        // ExtendDeadlines under overload: schedule via RET (Quick-Finish +
        // capped LPDAR), which completes every job by the extended ends. The
        // overload probe is a plain Stage-1 solve over the same job set the
        // pipeline would schedule, so it both consumes and refreshes the
        // carried warm basis.
        if self.cfg.policy == OverloadPolicy::ExtendDeadlines && !jobs.is_empty() {
            let probe = Instance::build_with_demands_from(
                &self.graph,
                &jobs,
                demands.clone(),
                &self.cfg.instance,
                &mut self.pathset,
                now,
            );
            let s1 = solve_stage1_in(
                &probe,
                &self.cfg.lp,
                self.warm_stage1.as_ref(),
                &mut self.arena,
            )?;
            inv_stats.merge(&s1.stats);
            if s1.basis.is_some() {
                self.warm_stage1 = s1.basis;
            }
            let z = s1.z_star;
            if z < 1.0 {
                if let Some(ret) = solve_ret_with_demands(
                    &self.graph,
                    &jobs,
                    &demands,
                    &self.cfg.instance,
                    &self.cfg.ret,
                )? {
                    inv_stats.merge(&ret.stats);
                    self.stats.merge(&inv_stats);
                    extension = ret.b_final;
                    let ext_jobs: Vec<Job> = jobs
                        .iter()
                        .map(|j| j.with_extended_end(extension))
                        .collect();
                    self.active = ext_jobs
                        .iter()
                        .zip(&demands)
                        .map(|(j, &d)| ActiveJob {
                            job: j.clone(),
                            remaining: d,
                            committed: d,
                        })
                        .collect();
                    return Ok(InvocationResult {
                        z_star: z,
                        schedule: ret.lpdar,
                        instance: ret.instance,
                        admitted,
                        rejected,
                        extension,
                        stats: inv_stats,
                    });
                }
            }
        }

        // Build the instance over the admitted set and schedule with the
        // two-stage pipeline + LPDAR, warm-starting Stage 1 from the carried
        // basis (the previous invocation's — or, under ExtendDeadlines, this
        // round's overload probe over the identical instance).
        let inst = Instance::build_with_demands_from(
            &self.graph,
            &jobs,
            demands.clone(),
            &self.cfg.instance,
            &mut self.pathset,
            now,
        );
        let pipe = max_throughput_pipeline_in(
            &inst,
            self.cfg.alpha,
            self.cfg.order,
            &self.cfg.lp,
            self.warm_stage1.as_ref(),
            &mut self.arena,
        )?;
        inv_stats.merge(&pipe.stats);
        if pipe.stage1_basis.is_some() {
            self.warm_stage1 = pipe.stage1_basis.clone();
        }

        // Refresh the active set: mandatory jobs keep their remaining
        // demand; new jobs enter with full demand. Committed demand under
        // ShrinkDemands is what the schedule can deliver.
        let mut next_active = Vec::with_capacity(jobs.len());
        for (idx, j) in jobs.iter().enumerate() {
            let remaining = demands[idx];
            let committed = match self.cfg.policy {
                OverloadPolicy::ShrinkDemands => remaining.min(pipe.lpdar.transferred(&inst, idx)),
                _ => remaining,
            };
            next_active.push(ActiveJob {
                job: j.clone(),
                remaining,
                committed,
            });
        }
        self.active = next_active;
        self.stats.merge(&inv_stats);

        Ok(InvocationResult {
            z_star: pipe.z_star,
            schedule: pipe.lpdar,
            instance: inst,
            admitted,
            rejected,
            extension,
            stats: inv_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesched_net::abilene14;
    use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

    fn controller(w: u32, policy: OverloadPolicy) -> (Controller, Graph) {
        let (g, _) = abilene14(w);
        let mut cfg = ControllerConfig::paper(w);
        cfg.policy = policy;
        (Controller::new(g.clone(), cfg), g)
    }

    fn jobs(g: &Graph, n: usize, seed: u64) -> Vec<Job> {
        WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed,
            ..Default::default()
        })
        .generate(g)
    }

    #[test]
    fn single_invocation_schedules_everything() {
        let (mut c, g) = controller(4, OverloadPolicy::ShrinkDemands);
        let js = jobs(&g, 6, 1);
        let r = c.invoke(0.0, &js).unwrap();
        assert_eq!(r.admitted.len(), 6);
        assert!(r.rejected.is_empty());
        assert_eq!(c.active().len(), 6);
        assert!(r.schedule.is_integral(1e-9));
        assert!(r.schedule.max_capacity_violation(&r.instance) < 1e-9);
    }

    #[test]
    fn transfers_retire_jobs() {
        let (mut c, g) = controller(4, OverloadPolicy::ShrinkDemands);
        let js = jobs(&g, 3, 2);
        let r = c.invoke(0.0, &js).unwrap();
        let _ = r;
        // Report full transfers for all jobs.
        let ids: Vec<JobId> = c.active().iter().map(|a| a.job.id).collect();
        let rem: Vec<f64> = c.active().iter().map(|a| a.remaining).collect();
        for (id, r) in ids.iter().zip(rem) {
            c.record_transfer(*id, r);
        }
        // Next invocation retires them.
        let r2 = c.invoke(1.0, &[]).unwrap();
        assert_eq!(c.active().len(), 0);
        assert_eq!(c.finished().len(), 3);
        assert_eq!(r2.admitted.len(), 0);
    }

    #[test]
    fn reject_policy_rejects_under_overload() {
        // Tight network: 2 nodes, 1 wavelength.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let cfg = {
            let mut c = ControllerConfig::paper(1);
            c.policy = OverloadPolicy::Reject;
            c
        };
        let mut c = Controller::new(g, cfg);
        let reqs: Vec<Job> = (0..5)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let r = c.invoke(0.0, &reqs).unwrap();
        assert_eq!(r.admitted.len() + r.rejected.len(), 5);
        assert!(!r.rejected.is_empty(), "overload must reject something");
        assert!(r.z_star >= 1.0, "admitted set must be feasible");
        assert_eq!(c.total_rejected(), r.rejected.len());
    }

    #[test]
    fn extend_policy_extends_under_overload() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let cfg = {
            let mut c = ControllerConfig::paper(1);
            c.policy = OverloadPolicy::ExtendDeadlines;
            c
        };
        let mut c = Controller::new(g, cfg);
        let reqs: Vec<Job> = (0..3)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let r = c.invoke(0.0, &reqs).unwrap();
        assert!(r.extension > 0.0, "overload must extend deadlines");
        // With extended deadlines the whole demand fits.
        let total: f64 = (0..r.instance.num_jobs())
            .map(|i| {
                r.schedule
                    .transferred(&r.instance, i)
                    .min(r.instance.demands[i])
            })
            .sum();
        assert!((total - r.instance.total_demand()).abs() < 1e-6);
    }

    #[test]
    fn controller_accumulates_stats_and_reuses_basis() {
        let (mut c, g) = controller(4, OverloadPolicy::ShrinkDemands);
        let js = jobs(&g, 6, 1);
        let r1 = c.invoke(0.0, &js).unwrap();
        assert!(r1.stats.solves >= 2, "stage 1 + stage 2 at minimum");
        // First round: stage 2 warm-starts from stage 1, stage 1 is cold.
        assert!(r1.stats.warm_starts_accepted >= 1);
        let after_first = *c.stats();
        assert_eq!(after_first.solves, r1.stats.solves);

        // Re-invoke with nothing transferred and no arrivals: the same job
        // set (clamped one slice later) is re-scheduled, and the carried
        // stage-1 basis warms the new round.
        let r2 = c.invoke(1.0, &[]).unwrap();
        assert!(
            r2.stats.warm_starts_accepted >= 1,
            "carried basis unused: {:?}",
            r2.stats
        );
        // Lifetime counters accumulate across invocations.
        assert_eq!(c.stats().solves, after_first.solves + r2.stats.solves);
        assert_eq!(
            c.stats().iterations,
            after_first.iterations + r2.stats.iterations
        );
    }

    #[test]
    fn extend_policy_reports_ret_stats() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let cfg = {
            let mut c = ControllerConfig::paper(1);
            c.policy = OverloadPolicy::ExtendDeadlines;
            c
        };
        let mut c = Controller::new(g, cfg);
        let reqs: Vec<Job> = (0..3)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let r = c.invoke(0.0, &reqs).unwrap();
        assert!(r.extension > 0.0);
        // The probe plus RET's bisection amount to several LP solves.
        assert!(
            r.stats.solves > 2,
            "RET work missing from stats: {:?}",
            r.stats
        );
        assert_eq!(c.stats().solves, r.stats.solves);
    }

    #[test]
    fn shrink_policy_commits_reduced_demand() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let mut c = Controller::new(g, ControllerConfig::paper(1));
        let reqs: Vec<Job> = (0..4)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let r = c.invoke(0.0, &reqs).unwrap();
        assert!(r.z_star < 1.0);
        for a in c.active() {
            assert!(a.committed <= a.remaining + 1e-9);
        }
        // At least one job's commitment was genuinely shrunk.
        assert!(c.active().iter().any(|a| a.committed < a.remaining - 1e-9));
    }
}
