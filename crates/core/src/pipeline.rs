//! The end-to-end "maximizing throughput with end-time guarantee" pipeline
//! (paper Section II-B), with the per-stage timings reported in Fig. 3.
//!
//! Runs Stage 1 (maximum concurrent throughput `Z*`), Stage 2 (weighted
//! throughput LP with the fairness floor), then LPD and LPDAR. The paper's
//! timing convention is followed: the reported LPD time includes the LP
//! solve it discretizes, and the LPDAR time includes both.

use crate::instance::Instance;
use crate::lpdar::{adjust_rates, truncate, AdjustOrder};
use crate::schedule::Schedule;
use crate::stage1::solve_stage1_with;
use crate::stage2::solve_stage2_with;
use std::time::{Duration, Instant};
use wavesched_lp::{SimplexConfig, SolveError};

/// Everything the Fig. 1–3 experiments need from one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Stage-1 maximum concurrent throughput.
    pub z_star: f64,
    /// Fractional Stage-2 schedule (the paper's "LP").
    pub lp: Schedule,
    /// Truncated schedule (the paper's "LPD").
    pub lpd: Schedule,
    /// Adjusted schedule (the paper's "LPDAR").
    pub lpdar: Schedule,
    /// Weighted throughput (eq. 7) of LP.
    pub lp_throughput: f64,
    /// Weighted throughput of LPD.
    pub lpd_throughput: f64,
    /// Weighted throughput of LPDAR.
    pub lpdar_throughput: f64,
    /// Time to solve Stage 1.
    pub stage1_time: Duration,
    /// Cumulative time to produce LP (stage 1 + stage 2 solves).
    pub lp_time: Duration,
    /// Cumulative time to produce LPD (LP + truncation).
    pub lpd_time: Duration,
    /// Cumulative time to produce LPDAR (LPD + Algorithm 1).
    pub lpdar_time: Duration,
}

impl PipelineResult {
    /// LPD throughput normalized by LP's (the paper's Fig. 1/2 y-axis).
    pub fn lpd_normalized(&self) -> f64 {
        self.lpd_throughput / self.lp_throughput
    }

    /// LPDAR throughput normalized by LP's.
    pub fn lpdar_normalized(&self) -> f64 {
        self.lpdar_throughput / self.lp_throughput
    }
}

/// Runs the two-stage pipeline with default solver settings and the paper's
/// visit order.
pub fn max_throughput_pipeline(inst: &Instance, alpha: f64) -> Result<PipelineResult, SolveError> {
    max_throughput_pipeline_with(inst, alpha, AdjustOrder::Paper, &SimplexConfig::default())
}

/// Runs the two-stage pipeline with explicit order and solver settings.
pub fn max_throughput_pipeline_with(
    inst: &Instance,
    alpha: f64,
    order: AdjustOrder,
    cfg: &SimplexConfig,
) -> Result<PipelineResult, SolveError> {
    let t0 = Instant::now();
    let s1 = solve_stage1_with(inst, cfg)?;
    let stage1_time = t0.elapsed();

    let s2 = solve_stage2_with(inst, s1.z_star, alpha, cfg)?;
    let lp_time = t0.elapsed();

    let lpd = truncate(inst, &s2.schedule);
    let lpd_time = t0.elapsed();

    let adj = adjust_rates(inst, &lpd, order);
    let lpdar_time = t0.elapsed();

    Ok(PipelineResult {
        z_star: s1.z_star,
        lp_throughput: s2.schedule.weighted_throughput(inst),
        lpd_throughput: lpd.weighted_throughput(inst),
        lpdar_throughput: adj.weighted_throughput(inst),
        lp: s2.schedule,
        lpd,
        lpdar: adj,
        stage1_time,
        lp_time,
        lpd_time,
        lpdar_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use wavesched_net::{abilene14, PathSet};
    use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

    fn abilene_instance(n_jobs: usize, w: u32, seed: u64) -> Instance {
        let (g, _) = abilene14(w);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n_jobs,
            seed,
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(&g, &jobs, &cfg, &mut ps)
    }

    #[test]
    fn pipeline_orderings_hold() {
        let inst = abilene_instance(12, 2, 21);
        let r = max_throughput_pipeline(&inst, 0.1).unwrap();
        assert!(r.lpd_throughput <= r.lpdar_throughput + 1e-9);
        assert!(r.lpd_normalized() <= 1.0 + 1e-9);
        // Timing accumulates monotonically.
        assert!(r.stage1_time <= r.lp_time);
        assert!(r.lp_time <= r.lpd_time);
        assert!(r.lpd_time <= r.lpdar_time);
        // Outputs are consistent with the schedules.
        assert!((r.lp.weighted_throughput(&inst) - r.lp_throughput).abs() < 1e-12);
        assert!(r.lpdar.is_integral(1e-9));
        assert!(r.lpdar.max_capacity_violation(&inst) < 1e-9);
    }

    #[test]
    fn lpdar_recovers_most_of_lp_on_abilene() {
        // The paper's headline: LPDAR ~ LP on Abilene even at 2 wavelengths.
        let inst = abilene_instance(10, 2, 33);
        let r = max_throughput_pipeline(&inst, 0.1).unwrap();
        assert!(
            r.lpdar_normalized() > 0.8,
            "LPDAR only reached {} of LP",
            r.lpdar_normalized()
        );
        // And LPD should be visibly worse or equal.
        assert!(r.lpd_normalized() <= r.lpdar_normalized() + 1e-9);
    }

    #[test]
    fn discretization_gap_shrinks_with_wavelengths() {
        // More wavelengths => truncation loses proportionally less.
        let gap = |w: u32| {
            let inst = abilene_instance(10, w, 50);
            let r = max_throughput_pipeline(&inst, 0.1).unwrap();
            1.0 - r.lpd_normalized()
        };
        let g2 = gap(2);
        let g16 = gap(16);
        assert!(
            g16 <= g2 + 0.05,
            "LPD gap did not shrink: w=2 gap {g2}, w=16 gap {g16}"
        );
    }
}
