//! The end-to-end "maximizing throughput with end-time guarantee" pipeline
//! (paper Section II-B), with the per-stage timings reported in Fig. 3.
//!
//! Runs Stage 1 (maximum concurrent throughput `Z*`), Stage 2 (weighted
//! throughput LP with the fairness floor), then LPD and LPDAR. The paper's
//! timing convention is followed: the reported LPD time includes the LP
//! solve it discretizes, and the LPDAR time includes both.

use crate::arena::BuildArena;
use crate::colgen::{CgMaster, CgStats, ColGenConfig};
use crate::instance::{Instance, InstanceConfig};
use crate::lpdar::{adjust_rates, truncate, AdjustOrder};
use crate::schedule::Schedule;
use crate::stage1::{solve_stage1_colgen, solve_stage1_in};
use crate::stage2::{solve_stage2_colgen, solve_stage2_in, stage2_basis_from_stage1, WeightPolicy};
use std::time::{Duration, Instant};
use wavesched_lp::{Basis, SimplexConfig, SolveError, SolveStats};
use wavesched_net::Graph;
use wavesched_obs as obs;
use wavesched_workload::Job;

/// Everything the Fig. 1–3 experiments need from one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Stage-1 maximum concurrent throughput.
    pub z_star: f64,
    /// Fractional Stage-2 schedule (the paper's "LP").
    pub lp: Schedule,
    /// Truncated schedule (the paper's "LPD").
    pub lpd: Schedule,
    /// Adjusted schedule (the paper's "LPDAR").
    pub lpdar: Schedule,
    /// Weighted throughput (eq. 7) of LP.
    pub lp_throughput: f64,
    /// Weighted throughput of LPD.
    pub lpd_throughput: f64,
    /// Weighted throughput of LPDAR.
    pub lpdar_throughput: f64,
    /// Time to solve Stage 1.
    pub stage1_time: Duration,
    /// Cumulative time to produce LP (stage 1 + stage 2 solves).
    pub lp_time: Duration,
    /// Cumulative time to produce LPD (LP + truncation).
    pub lpd_time: Duration,
    /// Cumulative time to produce LPDAR (LPD + Algorithm 1).
    pub lpdar_time: Duration,
    /// Stage-1 optimal basis, for warm-starting the next structurally
    /// identical pipeline run (e.g. the following controller period).
    pub stage1_basis: Option<Basis>,
    /// Aggregated solver work counters across both stages.
    pub stats: SolveStats,
}

impl PipelineResult {
    /// LPD throughput normalized by LP's (the paper's Fig. 1/2 y-axis).
    ///
    /// When `lp_throughput` is zero (nothing schedulable, so LP, LPD and
    /// LPDAR all moved nothing) the ratio is reported as 1.0 — the
    /// discretization lost nothing — rather than the NaN a literal `0/0`
    /// would give.
    pub fn lpd_normalized(&self) -> f64 {
        // lint: allow(float-eq, reason = "exact-zero guard against a literal 0/0: any nonzero throughput, however small, is a meaningful denominator")
        if self.lp_throughput == 0.0 {
            return 1.0;
        }
        self.lpd_throughput / self.lp_throughput
    }

    /// LPDAR throughput normalized by LP's.
    ///
    /// Reports 1.0 when `lp_throughput` is zero; see [`lpd_normalized`].
    ///
    /// [`lpd_normalized`]: PipelineResult::lpd_normalized
    pub fn lpdar_normalized(&self) -> f64 {
        // lint: allow(float-eq, reason = "exact-zero guard against a literal 0/0: any nonzero throughput, however small, is a meaningful denominator")
        if self.lp_throughput == 0.0 {
            return 1.0;
        }
        self.lpdar_throughput / self.lp_throughput
    }
}

/// Runs the two-stage pipeline with default solver settings and the paper's
/// visit order.
pub fn max_throughput_pipeline(inst: &Instance, alpha: f64) -> Result<PipelineResult, SolveError> {
    max_throughput_pipeline_with(inst, alpha, AdjustOrder::Paper, &SimplexConfig::default())
}

/// Runs the two-stage pipeline with explicit order and solver settings.
pub fn max_throughput_pipeline_with(
    inst: &Instance,
    alpha: f64,
    order: AdjustOrder,
    cfg: &SimplexConfig,
) -> Result<PipelineResult, SolveError> {
    max_throughput_pipeline_warmed(inst, alpha, order, cfg, None)
}

/// Runs the two-stage pipeline, warm-starting Stage 1 from `stage1_start`.
///
/// Stage 2 is always warm-started from the Stage-1 optimum (the two stages
/// share their polytope; see
/// [`stage2_basis_from_stage1`](crate::stage2::stage2_basis_from_stage1)),
/// and `stage1_start` — typically [`PipelineResult::stage1_basis`] of the
/// previous controller period — additionally seeds Stage 1 itself. Either
/// warm start degrades to a cold solve on shape mismatch; the schedules are
/// identical either way.
pub fn max_throughput_pipeline_warmed(
    inst: &Instance,
    alpha: f64,
    order: AdjustOrder,
    cfg: &SimplexConfig,
    stage1_start: Option<&Basis>,
) -> Result<PipelineResult, SolveError> {
    max_throughput_pipeline_in(
        inst,
        alpha,
        order,
        cfg,
        stage1_start,
        &mut BuildArena::new(),
    )
}

/// [`max_throughput_pipeline_warmed`] routing all LP-construction scratch
/// through a caller-held [`BuildArena`]. A long-running caller (the
/// controller, a replay loop) holds one arena for its lifetime so
/// steady-state builds stop allocating; results are identical to the
/// throwaway-arena entry points.
pub fn max_throughput_pipeline_in(
    inst: &Instance,
    alpha: f64,
    order: AdjustOrder,
    cfg: &SimplexConfig,
    stage1_start: Option<&Basis>,
    arena: &mut BuildArena,
) -> Result<PipelineResult, SolveError> {
    let _pipeline_span = obs::span("pipeline");
    // lint: allow(wallclock, reason = "stage timings are reporting-only fields of PipelineResult; no scheduling decision reads them")
    let t0 = Instant::now();
    let s1 = {
        let _s = obs::span("stage1");
        solve_stage1_in(inst, cfg, stage1_start, arena)?
    };
    let stage1_time = t0.elapsed();

    let s2 = {
        let _s = obs::span("stage2");
        let s2_start = s1
            .basis
            .as_ref()
            .and_then(|b| stage2_basis_from_stage1(b, inst.vars.len()));
        solve_stage2_in(
            inst,
            s1.z_star,
            alpha,
            &WeightPolicy::DemandProportional,
            cfg,
            s2_start.as_ref(),
            arena,
        )?
    };
    let lp_time = t0.elapsed();

    let lpd = {
        let _s = obs::span("lpd");
        truncate(inst, &s2.schedule)
    };
    let lpd_time = t0.elapsed();

    let adj = {
        let _s = obs::span("lpdar");
        adjust_rates(inst, &lpd, order)
    };
    let lpdar_time = t0.elapsed();

    let mut stats = s1.stats;
    stats.merge(&s2.stats);

    Ok(PipelineResult {
        z_star: s1.z_star,
        lp_throughput: s2.schedule.weighted_throughput(inst),
        lpd_throughput: lpd.weighted_throughput(inst),
        lpdar_throughput: adj.weighted_throughput(inst),
        lp: s2.schedule,
        lpd,
        lpdar: adj,
        stage1_time,
        lp_time,
        lpd_time,
        lpdar_time,
        stage1_basis: s1.basis,
        stats,
    })
}

/// Runs the two-stage pipeline under delayed column generation.
///
/// Instead of materializing every Yen column up front, a single restricted
/// master ([`CgMaster`]) is seeded with each job's shortest path, driven to
/// the Stage-1 optimum by the price–resolve loop, switched to Stage-2 form
/// in place (pool, capacity rows and basis all carry over), and priced out
/// again. The converged pool then materializes into a standard
/// [`Instance`] — typically a small fraction of the exhaustive column
/// count — on which LPD/LPDAR run unchanged.
///
/// Returns the pipeline result, the materialized instance (callers need it
/// for schedule metrics), and the column-generation work counters.
/// `stage1_basis` is `None`: the basis lives inside the master's solver
/// session, which this function consumes.
pub fn max_throughput_pipeline_colgen(
    graph: &Graph,
    jobs: &[Job],
    icfg: &InstanceConfig,
    alpha: f64,
    order: AdjustOrder,
    cg: &ColGenConfig,
) -> Result<(PipelineResult, Instance, CgStats), SolveError> {
    let _pipeline_span = obs::span("pipeline");
    // lint: allow(wallclock, reason = "stage timings are reporting-only fields of PipelineResult; no scheduling decision reads them")
    let t0 = Instant::now();

    if jobs.is_empty() {
        let inst = Instance::build_with_paths(graph, &[], Vec::new(), icfg, Vec::new());
        let zero = Schedule::zero(&inst);
        let r = PipelineResult {
            z_star: f64::INFINITY,
            lp: zero.clone(),
            lpd: zero.clone(),
            lpdar: zero,
            lp_throughput: 0.0,
            lpd_throughput: 0.0,
            lpdar_throughput: 0.0,
            stage1_time: t0.elapsed(),
            lp_time: t0.elapsed(),
            lpd_time: t0.elapsed(),
            lpdar_time: t0.elapsed(),
            stage1_basis: None,
            stats: SolveStats::default(),
        };
        return Ok((r, inst, CgStats::default()));
    }

    let demands: Vec<f64> = jobs.iter().map(|j| icfg.demand_units(j.size_gb)).collect();
    let mut master = CgMaster::build(graph, jobs, demands, icfg, cg)?;
    let mut pricer = cg.pricer.build(icfg.paths_per_job);

    let z_star = solve_stage1_colgen(&mut master, pricer.as_mut())?;
    let stage1_time = t0.elapsed();

    let sol = {
        let _s = obs::span("stage2");
        solve_stage2_colgen(
            &mut master,
            pricer.as_mut(),
            z_star,
            alpha,
            &WeightPolicy::DemandProportional,
        )?
    };
    let lp_time = t0.elapsed();

    let inst = master.materialize();
    let lp = Schedule::from_values(&inst, master.values_on(&inst, &sol.x));

    let lpd = {
        let _s = obs::span("lpd");
        truncate(&inst, &lp)
    };
    let lpd_time = t0.elapsed();

    let adj = {
        let _s = obs::span("lpdar");
        adjust_rates(&inst, &lpd, order)
    };
    let lpdar_time = t0.elapsed();

    let r = PipelineResult {
        z_star,
        lp_throughput: lp.weighted_throughput(&inst),
        lpd_throughput: lpd.weighted_throughput(&inst),
        lpdar_throughput: adj.weighted_throughput(&inst),
        lp,
        lpd,
        lpdar: adj,
        stage1_time,
        lp_time,
        lpd_time,
        lpdar_time,
        stage1_basis: None,
        stats: master.session_stats(),
    };
    Ok((r, inst, master.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use wavesched_net::{abilene14, PathSet};
    use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

    fn abilene_instance(n_jobs: usize, w: u32, seed: u64) -> Instance {
        let (g, _) = abilene14(w);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n_jobs,
            seed,
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(&g, &jobs, &cfg, &mut ps)
    }

    #[test]
    fn pipeline_orderings_hold() {
        let inst = abilene_instance(12, 2, 21);
        let r = max_throughput_pipeline(&inst, 0.1).unwrap();
        assert!(r.lpd_throughput <= r.lpdar_throughput + 1e-9);
        assert!(r.lpd_normalized() <= 1.0 + 1e-9);
        // Timing accumulates monotonically.
        assert!(r.stage1_time <= r.lp_time);
        assert!(r.lp_time <= r.lpd_time);
        assert!(r.lpd_time <= r.lpdar_time);
        // Outputs are consistent with the schedules.
        assert!((r.lp.weighted_throughput(&inst) - r.lp_throughput).abs() < 1e-12);
        assert!(r.lpdar.is_integral(1e-9));
        assert!(r.lpdar.max_capacity_violation(&inst) < 1e-9);
    }

    #[test]
    fn lpdar_recovers_most_of_lp_on_abilene() {
        // The paper's headline: LPDAR ~ LP on Abilene even at 2 wavelengths.
        let inst = abilene_instance(10, 2, 33);
        let r = max_throughput_pipeline(&inst, 0.1).unwrap();
        assert!(
            r.lpdar_normalized() > 0.8,
            "LPDAR only reached {} of LP",
            r.lpdar_normalized()
        );
        // And LPD should be visibly worse or equal.
        assert!(r.lpd_normalized() <= r.lpdar_normalized() + 1e-9);
    }

    #[test]
    fn normalized_ratios_defined_when_nothing_schedulable() {
        // A job whose window can't fit a single slice produces an LP
        // throughput of exactly zero; the normalized ratios must report a
        // lossless 1.0, not NaN.
        use wavesched_net::abilene14;
        use wavesched_workload::{Job, JobId};
        let (g, nodes) = abilene14(2);
        let job = Job::new(JobId(0), 0.0, nodes[0], nodes[1], 10.0, 0.2, 0.8);
        let cfg = InstanceConfig::paper(2);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &[job], &cfg, &mut ps);
        let r = max_throughput_pipeline(&inst, 0.1).unwrap();
        assert_eq!(r.lp_throughput, 0.0);
        assert_eq!(r.lpd_normalized(), 1.0);
        assert_eq!(r.lpdar_normalized(), 1.0);
    }

    #[test]
    fn warmed_pipeline_matches_cold_and_saves_work() {
        // Re-running the pipeline on the same instance, warm-started from
        // the previous run's Stage-1 basis, must reproduce the same optima
        // with both warm starts accepted.
        let inst = abilene_instance(12, 2, 21);
        let cfg = SimplexConfig::default();
        let cold = max_throughput_pipeline_with(&inst, 0.1, AdjustOrder::Paper, &cfg).unwrap();
        let warm = max_throughput_pipeline_warmed(
            &inst,
            0.1,
            AdjustOrder::Paper,
            &cfg,
            cold.stage1_basis.as_ref(),
        )
        .unwrap();
        assert!((warm.z_star - cold.z_star).abs() < 1e-9);
        assert!((warm.lp_throughput - cold.lp_throughput).abs() < 1e-9);
        // Stage 1 re-solve and Stage 2 both start from optimal bases.
        assert_eq!(warm.stats.warm_starts_accepted, 2);
        assert!(warm.stats.iterations <= cold.stats.iterations);
    }

    #[test]
    fn discretization_gap_shrinks_with_wavelengths() {
        // More wavelengths => truncation loses proportionally less.
        let gap = |w: u32| {
            let inst = abilene_instance(10, w, 50);
            let r = max_throughput_pipeline(&inst, 0.1).unwrap();
            1.0 - r.lpd_normalized()
        };
        let g2 = gap(2);
        let g16 = gap(16);
        assert!(
            g16 <= g2 + 0.05,
            "LPD gap did not shrink: w=2 gap {g2}, w=16 gap {g16}"
        );
    }
}
