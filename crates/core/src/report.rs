//! Human-readable schedule reports.
//!
//! Operators inspect wavelength plans as timelines. This module renders a
//! [`Schedule`] two ways:
//!
//! * [`job_timeline`] — one row per job, one column per slice, each cell
//!   the total wavelengths assigned that slice (`.` for idle, `#` for 10+),
//!   with the window marked;
//! * [`link_utilization`] — the busiest (edge, slice) cells, as a table.

use crate::instance::Instance;
use crate::schedule::Schedule;
use std::fmt::Write as _;

/// Renders a per-job, per-slice wavelength timeline.
///
/// Cell glyphs: `.` zero inside the window, digits `1..=9`, `#` for ten or
/// more, and a space outside the job's window.
pub fn job_timeline(inst: &Instance, sched: &Schedule) -> String {
    let nslices = inst.grid.num_slices();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>9} {:>7}  timeline (slices 0..{nslices})",
        "job", "demand", "moved"
    );
    for i in 0..inst.num_jobs() {
        let w = inst.vars.window(i);
        let mut cells = String::with_capacity(nslices);
        for s in 0..nslices {
            if !w.contains(&s) {
                cells.push(' ');
                continue;
            }
            let total: f64 = (0..inst.vars.paths_of(i))
                .map(|p| sched.x[inst.vars.var(i, p, s)])
                .sum();
            let v = total.round() as i64;
            cells.push(match v {
                0 => '.',
                1..=9 => (b'0' + v as u8) as char,
                _ => '#',
            });
        }
        let _ = writeln!(
            out,
            "{:<8} {:>9.2} {:>7.2}  |{cells}|",
            inst.jobs[i].id.to_string(),
            inst.demands[i],
            sched.transferred(inst, i),
        );
    }
    out
}

/// Renders the `top` most utilized (link, slice) cells.
pub fn link_utilization(inst: &Instance, sched: &Schedule, top: usize) -> String {
    let mut rows: Vec<((u32, u32), f64, f64)> = inst
        .capacity_groups
        .iter()
        .map(|(&key, vars)| {
            let used: f64 = vars.iter().map(|&v| sched.x[v as usize]).sum();
            let cap = inst.graph.wavelengths(wavesched_net::EdgeId(key.0)) as f64;
            (key, used, cap)
        })
        .filter(|&(_, used, _)| used > 0.0)
        .collect();
    rows.sort_by(|a, b| (b.1 / b.2).total_cmp(&(a.1 / a.2)).then(a.0.cmp(&b.0)));
    rows.truncate(top);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>5} {:>6} {:>6}",
        "link @ slice", "used", "cap", "util"
    );
    for ((e, s), used, cap) in rows {
        let edge = wavesched_net::EdgeId(e);
        let name = format!(
            "{}->{} @ {s}",
            inst.graph.node_name(inst.graph.src(edge)),
            inst.graph.node_name(inst.graph.dst(edge)),
        );
        let _ = writeln!(
            out,
            "{name:<28} {used:>5.0} {cap:>6.0} {:>5.0}%",
            100.0 * used / cap
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use crate::pipeline::max_throughput_pipeline;
    use wavesched_net::{abilene14, PathSet};
    use wavesched_workload::{Job, JobId};

    fn demo() -> (Instance, Schedule) {
        let (g, nodes) = abilene14(4);
        let jobs = vec![
            Job::new(JobId(0), 0.0, nodes[0], nodes[10], 300.0, 0.0, 8.0),
            Job::new(JobId(1), 0.0, nodes[1], nodes[8], 150.0, 2.0, 6.0),
        ];
        let cfg = InstanceConfig::paper(4);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
        let r = max_throughput_pipeline(&inst, 0.1).unwrap();
        (inst, r.lpdar)
    }

    #[test]
    fn timeline_shape() {
        let (inst, sched) = demo();
        let text = job_timeline(&inst, &sched);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + inst.num_jobs());
        // Each timeline row encloses exactly num_slices cells in pipes.
        for l in &lines[1..] {
            let bar = l.split('|').nth(1).unwrap();
            assert_eq!(bar.chars().count(), inst.grid.num_slices());
        }
        // Job 1's window [2,6) leaves slices 0-1 blank.
        let bar1 = lines[2].split('|').nth(1).unwrap();
        assert!(bar1.starts_with("  "));
    }

    #[test]
    fn utilization_sorted_and_bounded() {
        let (inst, sched) = demo();
        let text = link_utilization(&inst, &sched, 5);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected at least one utilization row");
        assert!(lines.len() <= 6);
        // Percentages non-increasing and <= 100.
        let pcts: Vec<f64> = lines[1..]
            .iter()
            .map(|l| {
                l.trim_end_matches('%')
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        for w in pcts.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(pcts.iter().all(|&p| p <= 100.0 + 1e-9));
    }
}
