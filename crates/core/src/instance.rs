//! A scheduling instance: network + jobs + allowed paths + the variable
//! enumeration shared by all three formulations.
//!
//! Every formulation in the paper optimizes over the same decision
//! variables `x_i(p, j)` — the bandwidth (number of wavelengths) assigned
//! to job `i` on allowed path `p` during slice `j`. [`VarMap`] enumerates
//! exactly the variables that may be nonzero (eq. 4 zeroes everything
//! outside the job's window), and [`Instance`] carries the data every
//! builder needs: normalized demands, path edge lists, the time grid, and
//! the (edge, slice) capacity groups.

use crate::timegrid::TimeGrid;
use std::collections::BTreeMap;
use std::ops::Range;
use wavesched_net::{Graph, Path, PathSet};
use wavesched_workload::{normalized_demand, Job, LinkRate};

/// Instance-construction parameters.
#[derive(Debug, Clone)]
pub struct InstanceConfig {
    /// Allowed paths per job (`k` shortest); the paper uses 4–8.
    pub paths_per_job: usize,
    /// Aggregate link rate in Gbit/s (20 in all the paper's experiments).
    pub link_gbps: f64,
    /// Wavelengths per link — used for demand normalization; the
    /// per-wavelength rate is `link_gbps / wavelengths` (capacity held
    /// constant as wavelengths vary, as in Figs. 1–2).
    pub wavelengths: u32,
    /// Seconds per unit slice.
    pub slice_secs: f64,
}

impl InstanceConfig {
    /// The paper's setup with `w` wavelengths per 20 Gbps link, 4 paths per
    /// job and 60-second slices.
    pub fn paper(w: u32) -> Self {
        InstanceConfig {
            paths_per_job: 4,
            link_gbps: 20.0,
            wavelengths: w,
            slice_secs: 60.0,
        }
    }

    /// Normalized demand units for a file of `size_gb` gigabytes.
    pub fn demand_units(&self, size_gb: f64) -> f64 {
        normalized_demand(
            size_gb,
            LinkRate {
                total_gbps: self.link_gbps,
                wavelengths: self.wavelengths,
            },
            self.slice_secs,
        )
    }
}

/// Enumeration of the `(job, path, slice)` decision variables.
///
/// Variables of a job are contiguous, ordered path-major then slice, so a
/// variable index can be computed arithmetically from `(job, path, slice)`.
#[derive(Debug, Clone)]
pub struct VarMap {
    /// Per job: index of its first variable.
    job_offsets: Vec<usize>,
    /// Per job: number of allowed paths.
    num_paths: Vec<usize>,
    /// Per job: allowed slice window.
    windows: Vec<Range<usize>>,
    total: usize,
}

impl VarMap {
    fn build(windows: Vec<Range<usize>>, num_paths: Vec<usize>) -> Self {
        let mut job_offsets = Vec::with_capacity(windows.len());
        let mut total = 0usize;
        for (w, &np) in windows.iter().zip(&num_paths) {
            job_offsets.push(total);
            total += w.len() * np;
        }
        VarMap {
            job_offsets,
            num_paths,
            windows,
            total,
        }
    }

    /// Total number of variables.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no job has any schedulable variable.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of jobs covered.
    pub fn num_jobs(&self) -> usize {
        self.job_offsets.len()
    }

    /// The variable index of `(job, path, slice)`.
    ///
    /// # Panics
    /// Panics if the slice is outside the job's window or the path index is
    /// out of range.
    pub fn var(&self, job: usize, path: usize, slice: usize) -> usize {
        let w = &self.windows[job];
        assert!(path < self.num_paths[job], "path index out of range");
        assert!(w.contains(&slice), "slice {slice} outside window {w:?}");
        self.job_offsets[job] + path * w.len() + (slice - w.start)
    }

    /// The `(job, path, slice)` of a variable index.
    pub fn triple(&self, var: usize) -> (usize, usize, usize) {
        debug_assert!(var < self.total);
        // Binary search the owning job.
        let job = match self.job_offsets.binary_search(&var) {
            Ok(j) => {
                // Offsets of empty jobs collide; take the last job starting here
                // that has variables.
                let mut j = j;
                while self.windows[j].is_empty() || self.num_paths[j] == 0 {
                    j += 1;
                }
                j
            }
            Err(j) => j - 1,
        };
        let w = &self.windows[job];
        let rel = var - self.job_offsets[job];
        let path = rel / w.len();
        let slice = w.start + rel % w.len();
        (job, path, slice)
    }

    /// Variable index range of one job.
    pub fn job_range(&self, job: usize) -> Range<usize> {
        let start = self.job_offsets[job];
        let end = if job + 1 < self.job_offsets.len() {
            self.job_offsets[job + 1]
        } else {
            self.total
        };
        start..end
    }

    /// The allowed slice window of a job.
    pub fn window(&self, job: usize) -> Range<usize> {
        self.windows[job].clone()
    }

    /// Number of allowed paths of a job.
    pub fn paths_of(&self, job: usize) -> usize {
        self.num_paths[job]
    }

    /// Iterates `(var, job, path, slice)` over all variables.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        (0..self.num_jobs()).flat_map(move |job| {
            let w = self.windows[job].clone();
            let base = self.job_offsets[job];
            let wl = w.len();
            (0..self.num_paths[job]).flat_map(move |p| {
                let w = w.clone();
                w.enumerate()
                    .map(move |(off, slice)| (base + p * wl + off, job, p, slice))
            })
        })
    }
}

/// A fully-prepared scheduling instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The network (owned snapshot).
    pub graph: Graph,
    /// The jobs being scheduled.
    pub jobs: Vec<Job>,
    /// Normalized demand `D_i` per job (wavelength·slices).
    pub demands: Vec<f64>,
    /// Allowed paths per job.
    pub paths: Vec<Vec<Path>>,
    /// The time grid covering all windows.
    pub grid: TimeGrid,
    /// Decision-variable enumeration.
    pub vars: VarMap,
    /// The configuration the instance was built with.
    pub config: InstanceConfig,
    /// For every (edge, slice) touched by an allowed path: the variables
    /// crossing it. Keys are `(edge index, slice)`.
    pub capacity_groups: BTreeMap<(u32, u32), Vec<u32>>,
}

impl Instance {
    /// Builds an instance from a network and jobs. Demands are normalized
    /// from job sizes with `cfg`; paths come from `pathset`.
    pub fn build(graph: &Graph, jobs: &[Job], cfg: &InstanceConfig, pathset: &mut PathSet) -> Self {
        let demands: Vec<f64> = jobs.iter().map(|j| cfg.demand_units(j.size_gb)).collect();
        Self::build_with_demands(graph, jobs, demands, cfg, pathset)
    }

    /// Builds an instance with explicit normalized demands (used by the
    /// periodic controller to schedule *remaining* demand of in-flight
    /// jobs).
    pub fn build_with_demands(
        graph: &Graph,
        jobs: &[Job],
        demands: Vec<f64>,
        cfg: &InstanceConfig,
        pathset: &mut PathSet,
    ) -> Self {
        Self::build_with_demands_from(graph, jobs, demands, cfg, pathset, 0.0)
    }

    /// Like [`build_with_demands`](Instance::build_with_demands), but on an
    /// active-window grid whose stored slices start at `from_time` (the
    /// controller's current time). Slice indices stay global, so the
    /// resulting LPs, schedules and CSVs are byte-identical to a full
    /// build; only the memory for the dead `[0, from_time)` prefix is
    /// elided. `from_time = 0` is exactly the full build.
    pub fn build_with_demands_from(
        graph: &Graph,
        jobs: &[Job],
        demands: Vec<f64>,
        cfg: &InstanceConfig,
        pathset: &mut PathSet,
        from_time: f64,
    ) -> Self {
        let paths: Vec<Vec<Path>> = jobs
            .iter()
            .map(|j| pathset.paths(graph, j.src, j.dst).to_vec())
            .collect();
        Self::build_with_paths_from(graph, jobs, demands, cfg, paths, from_time)
    }

    /// Builds an instance with explicit per-job path lists instead of the
    /// Yen `PathSet` policy. This is how a converged column-generation
    /// pool materializes into a standard instance: the restricted master's
    /// active paths become the allowed paths, and every downstream
    /// consumer (schedules, LPD/LPDAR discretization, metrics) works
    /// unchanged.
    pub fn build_with_paths(
        graph: &Graph,
        jobs: &[Job],
        demands: Vec<f64>,
        cfg: &InstanceConfig,
        paths: Vec<Vec<Path>>,
    ) -> Self {
        Self::build_with_paths_from(graph, jobs, demands, cfg, paths, 0.0)
    }

    /// [`build_with_paths`](Instance::build_with_paths) on an active-window
    /// grid starting at `from_time`; see
    /// [`build_with_demands_from`](Instance::build_with_demands_from).
    pub fn build_with_paths_from(
        graph: &Graph,
        jobs: &[Job],
        demands: Vec<f64>,
        cfg: &InstanceConfig,
        paths: Vec<Vec<Path>>,
        from_time: f64,
    ) -> Self {
        assert_eq!(jobs.len(), demands.len());
        assert_eq!(jobs.len(), paths.len());
        let horizon = jobs
            .iter()
            .map(|j| j.end)
            .fold(1.0_f64, f64::max)
            .ceil()
            .max(1.0) as usize;
        let origin = wavesched_lp::pos_or_zero(from_time).floor() as usize;
        // `windowed(0, n)` is exactly `uniform(n)`; clamp so the grid keeps
        // at least one slice even when every window has already closed.
        let grid = TimeGrid::windowed(origin, horizon.max(origin + 1) - origin);

        let windows: Vec<Range<usize>> = jobs
            .iter()
            .map(|j| grid.window_slices(j.start, j.end))
            .collect();
        let num_paths: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        let vars = VarMap::build(windows, num_paths);

        let mut capacity_groups: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
        for (var, job, p, slice) in vars.iter() {
            for &e in paths[job][p].edges() {
                capacity_groups
                    .entry((e.0, slice as u32))
                    .or_default()
                    .push(var as u32);
            }
        }

        Instance {
            graph: graph.clone(),
            jobs: jobs.to_vec(),
            demands,
            paths,
            grid,
            vars,
            config: cfg.clone(),
            capacity_groups,
        }
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Sum of normalized demands.
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().sum()
    }

    /// True when some job has no allowed path or an empty window — such a
    /// job can never be scheduled and makes `Z* = 0`.
    pub fn has_unschedulable_job(&self) -> bool {
        (0..self.num_jobs()).any(|i| self.paths[i].is_empty() || self.vars.window(i).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesched_net::abilene14;
    use wavesched_workload::{JobId, WorkloadConfig, WorkloadGenerator};

    fn small_instance(n_jobs: usize) -> Instance {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n_jobs,
            seed: 1,
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(4);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(&g, &jobs, &cfg, &mut ps)
    }

    #[test]
    fn varmap_roundtrip() {
        let inst = small_instance(8);
        for (var, job, p, slice) in inst.vars.iter() {
            assert_eq!(inst.vars.var(job, p, slice), var);
            assert_eq!(inst.vars.triple(var), (job, p, slice));
        }
        let count = inst.vars.iter().count();
        assert_eq!(count, inst.vars.len());
    }

    #[test]
    fn windows_respect_job_times() {
        let inst = small_instance(10);
        for (i, j) in inst.jobs.iter().enumerate() {
            let w = inst.vars.window(i);
            if !w.is_empty() {
                assert!(inst.grid.start_of(w.start) >= j.start);
                assert!(inst.grid.end_of(w.end - 1) <= j.end);
            }
        }
    }

    #[test]
    fn capacity_groups_cover_paths() {
        let inst = small_instance(6);
        // Every variable must appear in exactly path-length capacity groups.
        let mut per_var = vec![0usize; inst.vars.len()];
        for vars in inst.capacity_groups.values() {
            for &v in vars {
                per_var[v as usize] += 1;
            }
        }
        for (var, job, p, _slice) in inst.vars.iter() {
            assert_eq!(
                per_var[var],
                inst.paths[job][p].len(),
                "var {var} appears in wrong number of capacity groups"
            );
        }
    }

    #[test]
    fn demands_normalized() {
        let inst = small_instance(5);
        let c = &inst.config;
        for (i, j) in inst.jobs.iter().enumerate() {
            let expect = j.size_gb * 8.0 / ((c.link_gbps / c.wavelengths as f64) * c.slice_secs);
            assert!((inst.demands[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_covers_all_windows() {
        let inst = small_instance(12);
        let max_end = inst.jobs.iter().map(|j| j.end).fold(0.0f64, f64::max);
        assert!(inst.grid.horizon() >= max_end.floor());
    }

    #[test]
    fn windowed_build_matches_full_build() {
        // When every job's window lies at or after `from_time`, the
        // active-window build must agree with the full build on everything
        // an LP builder consumes: variable enumeration, windows and
        // capacity groups — only the grid's stored prefix differs.
        let (g, _) = abilene14(4);
        let jobs: Vec<Job> = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 10,
            seed: 3,
            ..Default::default()
        })
        .generate(&g)
        .into_iter()
        .map(|mut j| {
            j.start += 25.0;
            j.end += 25.0;
            j
        })
        .collect();
        let cfg = InstanceConfig::paper(4);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let full = Instance::build(&g, &jobs, &cfg, &mut ps);
        let demands: Vec<f64> = jobs.iter().map(|j| cfg.demand_units(j.size_gb)).collect();
        let win = Instance::build_with_demands_from(&g, &jobs, demands, &cfg, &mut ps, 25.0);

        assert_eq!(win.grid.first_slice(), 25);
        assert_eq!(win.grid.num_slices(), full.grid.num_slices());
        assert_eq!(win.vars.len(), full.vars.len());
        for i in 0..jobs.len() {
            assert_eq!(win.vars.window(i), full.vars.window(i), "job {i}");
            assert_eq!(win.vars.paths_of(i), full.vars.paths_of(i), "job {i}");
        }
        assert_eq!(win.capacity_groups, full.capacity_groups);
        assert_eq!(win.demands, full.demands);
    }

    #[test]
    fn empty_window_job_is_flagged() {
        let (g, nodes) = abilene14(4);
        // A job whose window is too short to contain a full slice.
        let job = Job::new(JobId(0), 0.0, nodes[0], nodes[1], 10.0, 0.3, 0.9);
        let cfg = InstanceConfig::paper(4);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &[job], &cfg, &mut ps);
        assert!(inst.has_unschedulable_job());
        assert_eq!(inst.vars.len(), 0);
    }
}
