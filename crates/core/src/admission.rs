//! Admission control by rejection — the paper's "action (i)" (footnote 1).
//!
//! Jobs are listed in priority order (administrative policy, priority,
//! request time, ...). A binary search finds the longest prefix that can be
//! admitted while every admitted job still meets its deadline, i.e. the
//! longest prefix with Stage-1 `Z* >= 1`. Adding a job can only lower `Z*`
//! (it adds demand under the same capacities), so the predicate is monotone
//! in the prefix length and binary search is exact.

use crate::instance::{Instance, InstanceConfig};
use crate::stage1::solve_stage1_with;
use wavesched_lp::{SimplexConfig, SolveError};
use wavesched_net::{Graph, PathSet};
use wavesched_workload::Job;

/// Result of prefix admission.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// Number of candidates admitted (a prefix of the candidate list).
    pub admitted_prefix: usize,
    /// Stage-1 `Z*` of mandatory + admitted prefix.
    pub z_star: f64,
}

/// Admits the longest prefix of `candidates` (in priority order) such that
/// `mandatory + prefix` has `Z* >= 1`.
///
/// `mandatory` are previously-admitted, still-unfinished jobs whose
/// guarantees must be preserved; `mandatory_demands` are their *remaining*
/// normalized demands. If even the mandatory set alone is infeasible the
/// prefix is 0 and `z_star` reports the mandatory-only value.
pub fn admit_by_priority(
    graph: &Graph,
    mandatory: &[Job],
    mandatory_demands: &[f64],
    candidates: &[Job],
    cfg: &InstanceConfig,
    lp_cfg: &SimplexConfig,
) -> Result<AdmissionOutcome, SolveError> {
    assert_eq!(mandatory.len(), mandatory_demands.len());
    let mut pathset = PathSet::new(cfg.paths_per_job);

    let mut z_of = |prefix: usize| -> Result<f64, SolveError> {
        let mut jobs: Vec<Job> = mandatory.to_vec();
        jobs.extend_from_slice(&candidates[..prefix]);
        if jobs.is_empty() {
            return Ok(f64::INFINITY);
        }
        let mut demands: Vec<f64> = mandatory_demands.to_vec();
        demands.extend(
            candidates[..prefix]
                .iter()
                .map(|j| cfg.demand_units(j.size_gb)),
        );
        let inst = Instance::build_with_demands(graph, &jobs, demands, cfg, &mut pathset);
        Ok(solve_stage1_with(&inst, lp_cfg)?.z_star)
    };

    // Fast paths.
    let z_all = z_of(candidates.len())?;
    if z_all >= 1.0 {
        return Ok(AdmissionOutcome {
            admitted_prefix: candidates.len(),
            z_star: z_all,
        });
    }
    let z_none = z_of(0)?;
    if z_none < 1.0 {
        return Ok(AdmissionOutcome {
            admitted_prefix: 0,
            z_star: z_none,
        });
    }

    // Binary search the boundary: lo admissible, hi not.
    let (mut lo, mut hi) = (0usize, candidates.len());
    let mut z_lo = z_none;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let z = z_of(mid)?;
        if z >= 1.0 {
            lo = mid;
            z_lo = z;
        } else {
            hi = mid;
        }
    }
    Ok(AdmissionOutcome {
        admitted_prefix: lo,
        z_star: z_lo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesched_net::abilene14;
    use wavesched_workload::{JobId, WorkloadConfig, WorkloadGenerator};

    fn one_link_graph(w: u32) -> (Graph, Vec<wavesched_net::NodeId>) {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], w);
        (g, ns)
    }

    #[test]
    fn admits_all_when_light() {
        let (g, _) = abilene14(8);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 4,
            seed: 2,
            size_gb: (1.0, 5.0),
            window: (16.0, 24.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(8);
        let out = admit_by_priority(&g, &[], &[], &jobs, &cfg, &Default::default()).unwrap();
        assert_eq!(out.admitted_prefix, 4);
        assert!(out.z_star >= 1.0);
    }

    #[test]
    fn admits_exact_prefix_on_single_link() {
        // 1 wavelength, 4-slice windows, each job needs 2 units: capacity
        // of the shared window is 4 units => exactly 2 jobs fit.
        let (g, ns) = one_link_graph(1);
        let cfg = InstanceConfig::paper(1); // 150 GB per unit
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let out = admit_by_priority(&g, &[], &[], &jobs, &cfg, &Default::default()).unwrap();
        assert_eq!(out.admitted_prefix, 2);
        assert!(out.z_star >= 1.0);
    }

    #[test]
    fn mandatory_jobs_crowd_out_candidates() {
        let (g, ns) = one_link_graph(1);
        let cfg = InstanceConfig::paper(1);
        // Mandatory job eats 3 of the 4 wavelength-slices.
        let mandatory = vec![Job::new(JobId(99), 0.0, ns[0], ns[1], 450.0, 0.0, 4.0)];
        let m_demand = vec![cfg.demand_units(450.0)];
        let candidates: Vec<Job> = (0..3)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 150.0, 0.0, 4.0))
            .collect();
        let out = admit_by_priority(
            &g,
            &mandatory,
            &m_demand,
            &candidates,
            &cfg,
            &Default::default(),
        )
        .unwrap();
        assert_eq!(out.admitted_prefix, 1);
    }

    #[test]
    fn infeasible_mandatory_admits_nothing() {
        let (g, ns) = one_link_graph(1);
        let cfg = InstanceConfig::paper(1);
        let mandatory = vec![Job::new(JobId(9), 0.0, ns[0], ns[1], 1200.0, 0.0, 4.0)];
        let m_demand = vec![cfg.demand_units(1200.0)];
        let candidates = vec![Job::new(JobId(0), 0.0, ns[0], ns[1], 150.0, 0.0, 4.0)];
        let out = admit_by_priority(
            &g,
            &mandatory,
            &m_demand,
            &candidates,
            &cfg,
            &Default::default(),
        )
        .unwrap();
        assert_eq!(out.admitted_prefix, 0);
        assert!(out.z_star < 1.0);
    }

    #[test]
    fn empty_candidates() {
        let (g, _) = one_link_graph(2);
        let cfg = InstanceConfig::paper(2);
        let out = admit_by_priority(&g, &[], &[], &[], &cfg, &Default::default()).unwrap();
        assert_eq!(out.admitted_prefix, 0);
        assert!(out.z_star.is_infinite());
    }
}
