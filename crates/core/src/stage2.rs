//! Stage 2: weighted throughput with the fairness constraint (paper
//! eqs. 7–10), solved as its LP relaxation.
//!
//! The integer program maximizes `sum_i Z_i D_i / sum_i D_i` subject to
//! `Z_i >= (1 - alpha) Z*` and integral wavelength assignments. Following
//! the paper's heuristic, this module solves the *relaxation*; LPD/LPDAR
//! (see [`mod@crate::lpdar`]) then produce the integer solution. Substituting
//! eq. 8 eliminates the `Z_i` variables: the objective becomes total
//! transferred volume over total demand, and the fairness constraint a
//! per-job lower bound on transferred volume.

use crate::builders::{add_assignment_cols, add_capacity_rows, job_volume_coeffs};
use crate::instance::Instance;
use crate::schedule::Schedule;
use wavesched_lp::{solve_with, Objective, Problem, SimplexConfig, SolveError, SolveStats, Status};

/// The job weights `w_i` in the Stage-2 objective `sum_i w_i Z_i / sum_i w_i`.
///
/// The paper's default weighs jobs by their (normalized) sizes, "giving
/// preference to larger jobs"; it explicitly notes that administrators can
/// instead weigh inversely by size (favoring many small jobs) or by
/// user-declared importance. All three are provided.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightPolicy {
    /// `w_i = D_i` — the paper's default (eq. 7).
    DemandProportional,
    /// `w_i = 1` — every job counts equally.
    Uniform,
    /// `w_i = 1 / D_i` — favor finishing many small jobs.
    InverseDemand,
    /// Explicit per-job importance weights (must be positive, one per job).
    Importance(Vec<f64>),
}

impl WeightPolicy {
    /// Resolves the weight of job `i`.
    pub fn weight(&self, inst: &Instance, i: usize) -> f64 {
        match self {
            WeightPolicy::DemandProportional => inst.demands[i],
            WeightPolicy::Uniform => 1.0,
            WeightPolicy::InverseDemand => 1.0 / inst.demands[i],
            WeightPolicy::Importance(w) => {
                assert_eq!(w.len(), inst.num_jobs(), "one weight per job");
                assert!(w[i] > 0.0, "weights must be positive");
                w[i]
            }
        }
    }
}

/// Result of the Stage-2 relaxation.
#[derive(Debug, Clone)]
pub struct Stage2Result {
    /// Fractional optimal assignment (the paper's "LP").
    pub schedule: Schedule,
    /// Weighted throughput (eq. 7) of the fractional solution.
    pub objective: f64,
    /// Solver work counters.
    pub stats: SolveStats,
}

/// Solves the Stage-2 relaxation with default simplex settings.
///
/// `z_star` is the Stage-1 maximum concurrent throughput; `alpha` the
/// fairness slack (0.1 in the paper's evaluation).
pub fn solve_stage2(
    inst: &Instance,
    z_star: f64,
    alpha: f64,
) -> Result<Stage2Result, SolveError> {
    solve_stage2_with(inst, z_star, alpha, &SimplexConfig::default())
}

/// Solves the Stage-2 relaxation with explicit simplex settings.
pub fn solve_stage2_with(
    inst: &Instance,
    z_star: f64,
    alpha: f64,
    cfg: &SimplexConfig,
) -> Result<Stage2Result, SolveError> {
    solve_stage2_weighted(inst, z_star, alpha, &WeightPolicy::DemandProportional, cfg)
}

/// Solves the Stage-2 relaxation under an explicit [`WeightPolicy`].
///
/// With weights `w_i`, the objective is `sum_i w_i Z_i / sum_i w_i`, which
/// after substituting eq. 8 becomes a per-variable cost of
/// `(w_i / D_i) * LEN(j) / sum w`.
pub fn solve_stage2_weighted(
    inst: &Instance,
    z_star: f64,
    alpha: f64,
    weights: &WeightPolicy,
    cfg: &SimplexConfig,
) -> Result<Stage2Result, SolveError> {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    if inst.num_jobs() == 0 {
        return Ok(Stage2Result {
            schedule: Schedule::zero(inst),
            objective: 0.0,
            stats: SolveStats::default(),
        });
    }

    let total_weight: f64 = (0..inst.num_jobs()).map(|i| weights.weight(inst, i)).sum();
    let mut p = Problem::new(Objective::Maximize);
    let cols = add_assignment_cols(&mut p, inst);

    // Objective: sum_i (w_i / D_i) sum_{p,j} x·LEN / sum_i w_i
    // (eq. 7 generalized; with w_i = D_i this is total volume / total demand).
    for (var, job, _, slice) in inst.vars.iter() {
        let scale = weights.weight(inst, job) / inst.demands[job];
        p.set_cost(cols[var], scale * inst.grid.len_of(slice) / total_weight);
    }

    // Fairness (eq. 9): per-job transferred volume >= (1-alpha) Z* D_i.
    for i in 0..inst.num_jobs() {
        let coeffs = job_volume_coeffs(inst, &cols, i);
        let floor = (1.0 - alpha) * z_star * inst.demands[i];
        p.add_row(floor, f64::INFINITY, &coeffs);
    }
    add_capacity_rows(&mut p, inst, &cols);

    let sol = solve_with(&p, cfg)?;
    match sol.status {
        Status::Optimal => Ok(Stage2Result {
            schedule: Schedule::from_values(inst, sol.x[..inst.vars.len()].to_vec()),
            objective: sol.objective,
            stats: sol.stats,
        }),
        // With z_star from Stage 1 the fairness floors are feasible by
        // construction; any other status is a solver breakdown.
        other => Err(SolveError::Numerical(format!(
            "stage 2 terminated with status {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use crate::stage1::solve_stage1;
    use wavesched_net::{abilene14, Graph, PathSet};
    use wavesched_workload::{Job, JobId, WorkloadConfig, WorkloadGenerator};

    fn build(graph: &Graph, jobs: &[Job], w: u32) -> Instance {
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(graph, jobs, &cfg, &mut ps)
    }

    #[test]
    fn stage2_at_least_z_star() {
        // Weighted throughput can only improve on the concurrent optimum.
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 15,
            seed: 11,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let s1 = solve_stage1(&inst).unwrap();
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).unwrap();
        assert!(
            s2.objective >= s1.z_star * (1.0 - 1e-6),
            "stage2 {} < z* {}",
            s2.objective,
            s1.z_star
        );
        // Fairness floors hold.
        for i in 0..inst.num_jobs() {
            assert!(
                s2.schedule.throughput(&inst, i) >= 0.9 * s1.z_star - 1e-6,
                "job {i} throughput {} below fairness floor",
                s2.schedule.throughput(&inst, i)
            );
        }
        assert!(s2.schedule.max_capacity_violation(&inst) < 1e-6);
        // Objective matches the schedule's weighted throughput.
        assert!((s2.schedule.weighted_throughput(&inst) - s2.objective).abs() < 1e-6);
    }

    #[test]
    fn favors_larger_jobs_under_overload() {
        // One link, capacity 1, 2 slices; small job (1 unit) and large job
        // (4 units). Weighted objective prefers the large job beyond the
        // fairness floor.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        // paper(1): 150 GB per unit.
        let small = Job::new(JobId(0), 0.0, ns[0], ns[1], 150.0, 0.0, 2.0);
        let large = Job::new(JobId(1), 0.0, ns[0], ns[1], 600.0, 0.0, 2.0);
        let inst = build(&g, &[small, large], 1);
        let s1 = solve_stage1(&inst).unwrap();
        // Z* = 2 / 5.
        assert!((s1.z_star - 0.4).abs() < 1e-6);
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).unwrap();
        let z_small = s2.schedule.throughput(&inst, 0);
        let z_large = s2.schedule.throughput(&inst, 1);
        // Both meet the floor 0.9 * 0.4 = 0.36.
        assert!(z_small >= 0.36 - 1e-6);
        assert!(z_large >= 0.36 - 1e-6);
        // Weighted throughput is at least Z* and capacity is saturated:
        // total moved = 2 units => objective = 2/5.
        assert!((s2.objective - 0.4).abs() < 1e-6);
    }

    #[test]
    fn alpha_zero_pins_fairness() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 8,
            seed: 4,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let s1 = solve_stage1(&inst).unwrap();
        let s2 = solve_stage2(&inst, s1.z_star, 0.0).unwrap();
        for i in 0..inst.num_jobs() {
            assert!(s2.schedule.throughput(&inst, i) >= s1.z_star - 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_out_of_range_panics() {
        let (g, _) = abilene14(4);
        let inst = build(&g, &[], 4);
        let _ = solve_stage2(&inst, 1.0, 1.5);
    }

    #[test]
    fn inverse_demand_weights_flip_preference() {
        // One link, capacity 1, 2 slices; small job (1 unit) and large job
        // (4 units). With alpha = 1 (no fairness floor) the weight policy
        // alone decides who gets the capacity.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let small = Job::new(JobId(0), 0.0, ns[0], ns[1], 150.0, 0.0, 2.0);
        let large = Job::new(JobId(1), 0.0, ns[0], ns[1], 600.0, 0.0, 2.0);
        let inst = build(&g, &[small, large], 1);
        let cfg = wavesched_lp::SimplexConfig::default();

        let fav_large = solve_stage2_weighted(
            &inst,
            0.0,
            1.0,
            &WeightPolicy::DemandProportional,
            &cfg,
        )
        .unwrap();
        let fav_small =
            solve_stage2_weighted(&inst, 0.0, 1.0, &WeightPolicy::InverseDemand, &cfg).unwrap();
        // Under inverse weighting the small job's throughput cannot drop.
        assert!(
            fav_small.schedule.throughput(&inst, 0)
                >= fav_large.schedule.throughput(&inst, 0) - 1e-9
        );
        // And the small job is fully served (weight 1/1 vs 1/4 per unit).
        assert!(fav_small.schedule.throughput(&inst, 0) >= 1.0 - 1e-6);
    }

    #[test]
    fn importance_weights_accepted() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 4,
            seed: 6,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let s1 = solve_stage1(&inst).unwrap();
        let w = WeightPolicy::Importance(vec![1.0, 5.0, 1.0, 1.0]);
        let r = solve_stage2_weighted(&inst, s1.z_star, 0.1, &w, &Default::default()).unwrap();
        assert!(r.schedule.max_capacity_violation(&inst) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one weight per job")]
    fn importance_weights_length_checked() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 3,
            seed: 6,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let w = WeightPolicy::Importance(vec![1.0]);
        let _ = solve_stage2_weighted(&inst, 1.0, 0.1, &w, &Default::default());
    }
}
