//! Stage 2: weighted throughput with the fairness constraint (paper
//! eqs. 7–10), solved as its LP relaxation.
//!
//! The integer program maximizes `sum_i Z_i D_i / sum_i D_i` subject to
//! `Z_i >= (1 - alpha) Z*` and integral wavelength assignments. Following
//! the paper's heuristic, this module solves the *relaxation*; LPD/LPDAR
//! (see [`mod@crate::lpdar`]) then produce the integer solution. Substituting
//! eq. 8 eliminates the `Z_i` variables: the objective becomes total
//! transferred volume over total demand, and the fairness constraint a
//! per-job lower bound on transferred volume.

use crate::arena::BuildArena;
use crate::builders::{add_assignment_cols, add_capacity_rows, job_volume_coeffs};
use crate::colgen::{CgMaster, Pricer};
use crate::instance::Instance;
use crate::schedule::Schedule;
use wavesched_lp::{
    solve_with_start, Basis, Objective, Problem, SimplexConfig, Solution, SolveError, SolveStats,
    Status,
};

/// The job weights `w_i` in the Stage-2 objective `sum_i w_i Z_i / sum_i w_i`.
///
/// The paper's default weighs jobs by their (normalized) sizes, "giving
/// preference to larger jobs"; it explicitly notes that administrators can
/// instead weigh inversely by size (favoring many small jobs) or by
/// user-declared importance. All three are provided.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightPolicy {
    /// `w_i = D_i` — the paper's default (eq. 7).
    DemandProportional,
    /// `w_i = 1` — every job counts equally.
    Uniform,
    /// `w_i = 1 / D_i` — favor finishing many small jobs.
    InverseDemand,
    /// Explicit per-job importance weights (must be positive, one per job).
    Importance(Vec<f64>),
}

impl WeightPolicy {
    /// Resolves the weight of job `i`.
    pub fn weight(&self, inst: &Instance, i: usize) -> f64 {
        self.weight_of(&inst.demands, i)
    }

    /// Resolves the weight of job `i` from raw normalized demands — for
    /// callers without a materialized [`Instance`], like the
    /// column-generation restricted master.
    pub fn weight_of(&self, demands: &[f64], i: usize) -> f64 {
        match self {
            WeightPolicy::DemandProportional => demands[i],
            WeightPolicy::Uniform => 1.0,
            WeightPolicy::InverseDemand => 1.0 / demands[i],
            WeightPolicy::Importance(w) => {
                assert_eq!(w.len(), demands.len(), "one weight per job");
                assert!(w[i] > 0.0, "weights must be positive");
                w[i]
            }
        }
    }
}

/// Result of the Stage-2 relaxation.
#[derive(Debug, Clone)]
pub struct Stage2Result {
    /// Fractional optimal assignment (the paper's "LP").
    pub schedule: Schedule,
    /// Weighted throughput (eq. 7) of the fractional solution.
    pub objective: f64,
    /// The optimal simplex basis. `None` for empty instances.
    pub basis: Option<Basis>,
    /// Solver work counters.
    pub stats: SolveStats,
}

/// Maps a Stage-1 optimal basis onto the Stage-2 problem over the same
/// instance.
///
/// The two stages share their variable space exactly — one column per
/// assignment variable in [`Instance::vars`] order plus a trailing `Z`
/// column — and their row layout (one row per job, then one per capacity
/// group in sorted key order). Only bounds and costs differ, which warm
/// starting absorbs: the Stage-1 optimal vertex `(x*, Z*)` is feasible for
/// Stage 2 as-is, so the basis transfers verbatim. Returns `None` when the
/// shape doesn't match (`num_vars` is the assignment-variable count,
/// `inst.vars.len()`); callers then simply solve cold.
pub fn stage2_basis_from_stage1(stage1: &Basis, num_vars: usize) -> Option<Basis> {
    if stage1.cols.len() != num_vars + 1 {
        return None;
    }
    Some(stage1.clone())
}

/// Solves the Stage-2 relaxation with default simplex settings.
///
/// `z_star` is the Stage-1 maximum concurrent throughput; `alpha` the
/// fairness slack (0.1 in the paper's evaluation).
pub fn solve_stage2(inst: &Instance, z_star: f64, alpha: f64) -> Result<Stage2Result, SolveError> {
    solve_stage2_with(inst, z_star, alpha, &SimplexConfig::default())
}

/// Solves the Stage-2 relaxation with explicit simplex settings.
pub fn solve_stage2_with(
    inst: &Instance,
    z_star: f64,
    alpha: f64,
    cfg: &SimplexConfig,
) -> Result<Stage2Result, SolveError> {
    solve_stage2_weighted(inst, z_star, alpha, &WeightPolicy::DemandProportional, cfg)
}

/// Solves the Stage-2 relaxation under an explicit [`WeightPolicy`].
///
/// With weights `w_i`, the objective is `sum_i w_i Z_i / sum_i w_i`, which
/// after substituting eq. 8 becomes a per-variable cost of
/// `(w_i / D_i) * LEN(j) / sum w`.
pub fn solve_stage2_weighted(
    inst: &Instance,
    z_star: f64,
    alpha: f64,
    weights: &WeightPolicy,
    cfg: &SimplexConfig,
) -> Result<Stage2Result, SolveError> {
    solve_stage2_weighted_with_start(inst, z_star, alpha, weights, cfg, None)
}

/// Solves the Stage-2 relaxation, warm-starting from `start` when given.
///
/// The natural start is the Stage-1 optimum over the same instance, mapped
/// via [`stage2_basis_from_stage1`]: Stage 2 explores the same polytope from
/// a vertex that already satisfies the capacity rows and sits on the fairness
/// floors. A mismatched basis degrades to a cold solve.
pub fn solve_stage2_weighted_with_start(
    inst: &Instance,
    z_star: f64,
    alpha: f64,
    weights: &WeightPolicy,
    cfg: &SimplexConfig,
    start: Option<&Basis>,
) -> Result<Stage2Result, SolveError> {
    solve_stage2_in(
        inst,
        z_star,
        alpha,
        weights,
        cfg,
        start,
        &mut BuildArena::new(),
    )
}

/// [`solve_stage2_weighted_with_start`] building the LP through a
/// caller-held [`BuildArena`]; see
/// [`solve_stage1_in`](crate::stage1::solve_stage1_in).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_stage2_in(
    inst: &Instance,
    z_star: f64,
    alpha: f64,
    weights: &WeightPolicy,
    cfg: &SimplexConfig,
    start: Option<&Basis>,
    arena: &mut BuildArena,
) -> Result<Stage2Result, SolveError> {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    if inst.num_jobs() == 0 {
        return Ok(Stage2Result {
            schedule: Schedule::zero(inst),
            objective: 0.0,
            basis: None,
            stats: SolveStats::default(),
        });
    }

    let total_weight: f64 = (0..inst.num_jobs()).map(|i| weights.weight(inst, i)).sum();
    let mut p = Problem::new(Objective::Maximize);
    let (cols, coeffs) = arena.scratch();
    add_assignment_cols(&mut p, inst, cols);
    // A costless fairness-level variable Z >= (1-alpha) Z*, mirroring
    // Stage 1's Z column so the two problems share one variable space and a
    // Stage-1 basis installs verbatim. Writing the fairness rows as
    // `volume_i - D_i Z >= 0` is equivalent to the literal floor
    // `volume_i >= (1-alpha) Z* D_i`: lowering Z only relaxes the rows, so
    // the x-projections of the two feasible sets coincide, and the objective
    // doesn't involve Z.
    let z = p.add_col((1.0 - alpha) * z_star, f64::INFINITY, 0.0);

    // Objective: sum_i (w_i / D_i) sum_{p,j} x·LEN / sum_i w_i
    // (eq. 7 generalized; with w_i = D_i this is total volume / total demand).
    for (var, job, _, slice) in inst.vars.iter() {
        let scale = weights.weight(inst, job) / inst.demands[job];
        p.set_cost(cols[var], scale * inst.grid.len_of(slice) / total_weight);
    }

    // Fairness (eq. 9): per-job transferred volume >= (1-alpha) Z* D_i.
    for i in 0..inst.num_jobs() {
        job_volume_coeffs(inst, cols, i, coeffs);
        coeffs.push((z, -inst.demands[i]));
        p.add_row(0.0, f64::INFINITY, coeffs);
    }
    add_capacity_rows(&mut p, inst, cols, coeffs);

    let sol = solve_with_start(&p, cfg, start)?;
    match sol.status {
        Status::Optimal => Ok(Stage2Result {
            schedule: Schedule::from_values(inst, sol.x[..inst.vars.len()].to_vec()),
            objective: sol.objective,
            basis: sol.basis,
            stats: sol.stats,
        }),
        // With z_star from Stage 1 the fairness floors are feasible by
        // construction; any other status is a solver breakdown.
        other => Err(SolveError::Numerical(format!(
            "stage 2 terminated with status {other}"
        ))),
    }
}

/// Solves Stage 2 by delayed column generation **on the same master Stage 1
/// converged on**: only costs and bounds change (the fairness floor on `Z`,
/// the per-column volume costs), so the converged pool, the capacity rows
/// and the optimal basis all carry over, and the price–resolve loop only
/// has to generate whatever additional paths the weighted objective makes
/// attractive. Returns the final restricted-master solution; map it onto a
/// materialized instance with [`CgMaster::values_on`].
pub fn solve_stage2_colgen(
    master: &mut CgMaster,
    pricer: &mut dyn Pricer,
    z_star: f64,
    alpha: f64,
    weights: &WeightPolicy,
) -> Result<Solution, SolveError> {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let demands = master.demands().to_vec();
    let total_weight: f64 = (0..demands.len())
        .map(|i| weights.weight_of(&demands, i))
        .sum();
    let scale: Vec<f64> = (0..demands.len())
        .map(|i| weights.weight_of(&demands, i) / demands[i] / total_weight)
        .collect();
    master.set_stage2((1.0 - alpha) * z_star, scale);
    let mut rounds = 0usize;
    loop {
        let sol = master.solve()?;
        if sol.status != Status::Optimal {
            // With z_star from Stage 1 the floors are feasible by
            // construction; anything else is a solver breakdown.
            return Err(SolveError::Numerical(format!(
                "stage 2 (colgen) terminated with status {}",
                sol.status
            )));
        }
        if master.price_and_augment(&sol, pricer, rounds) == 0 {
            return Ok(sol);
        }
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use crate::stage1::solve_stage1;
    use wavesched_net::{abilene14, Graph, PathSet};
    use wavesched_workload::{Job, JobId, WorkloadConfig, WorkloadGenerator};

    fn build(graph: &Graph, jobs: &[Job], w: u32) -> Instance {
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(graph, jobs, &cfg, &mut ps)
    }

    #[test]
    fn stage2_at_least_z_star() {
        // Weighted throughput can only improve on the concurrent optimum.
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 15,
            seed: 11,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let s1 = solve_stage1(&inst).unwrap();
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).unwrap();
        assert!(
            s2.objective >= s1.z_star * (1.0 - 1e-6),
            "stage2 {} < z* {}",
            s2.objective,
            s1.z_star
        );
        // Fairness floors hold.
        for i in 0..inst.num_jobs() {
            assert!(
                s2.schedule.throughput(&inst, i) >= 0.9 * s1.z_star - 1e-6,
                "job {i} throughput {} below fairness floor",
                s2.schedule.throughput(&inst, i)
            );
        }
        assert!(s2.schedule.max_capacity_violation(&inst) < 1e-6);
        // Objective matches the schedule's weighted throughput.
        assert!((s2.schedule.weighted_throughput(&inst) - s2.objective).abs() < 1e-6);
    }

    #[test]
    fn favors_larger_jobs_under_overload() {
        // One link, capacity 1, 2 slices; small job (1 unit) and large job
        // (4 units). Weighted objective prefers the large job beyond the
        // fairness floor.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        // paper(1): 150 GB per unit.
        let small = Job::new(JobId(0), 0.0, ns[0], ns[1], 150.0, 0.0, 2.0);
        let large = Job::new(JobId(1), 0.0, ns[0], ns[1], 600.0, 0.0, 2.0);
        let inst = build(&g, &[small, large], 1);
        let s1 = solve_stage1(&inst).unwrap();
        // Z* = 2 / 5.
        assert!((s1.z_star - 0.4).abs() < 1e-6);
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).unwrap();
        let z_small = s2.schedule.throughput(&inst, 0);
        let z_large = s2.schedule.throughput(&inst, 1);
        // Both meet the floor 0.9 * 0.4 = 0.36.
        assert!(z_small >= 0.36 - 1e-6);
        assert!(z_large >= 0.36 - 1e-6);
        // Weighted throughput is at least Z* and capacity is saturated:
        // total moved = 2 units => objective = 2/5.
        assert!((s2.objective - 0.4).abs() < 1e-6);
    }

    #[test]
    fn alpha_zero_pins_fairness() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 8,
            seed: 4,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let s1 = solve_stage1(&inst).unwrap();
        let s2 = solve_stage2(&inst, s1.z_star, 0.0).unwrap();
        for i in 0..inst.num_jobs() {
            assert!(s2.schedule.throughput(&inst, i) >= s1.z_star - 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_out_of_range_panics() {
        let (g, _) = abilene14(4);
        let inst = build(&g, &[], 4);
        let _ = solve_stage2(&inst, 1.0, 1.5);
    }

    #[test]
    fn inverse_demand_weights_flip_preference() {
        // One link, capacity 1, 2 slices; small job (1 unit) and large job
        // (4 units). With alpha = 1 (no fairness floor) the weight policy
        // alone decides who gets the capacity.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let small = Job::new(JobId(0), 0.0, ns[0], ns[1], 150.0, 0.0, 2.0);
        let large = Job::new(JobId(1), 0.0, ns[0], ns[1], 600.0, 0.0, 2.0);
        let inst = build(&g, &[small, large], 1);
        let cfg = SimplexConfig::default();

        let fav_large =
            solve_stage2_weighted(&inst, 0.0, 1.0, &WeightPolicy::DemandProportional, &cfg)
                .unwrap();
        let fav_small =
            solve_stage2_weighted(&inst, 0.0, 1.0, &WeightPolicy::InverseDemand, &cfg).unwrap();
        // Under inverse weighting the small job's throughput cannot drop.
        assert!(
            fav_small.schedule.throughput(&inst, 0)
                >= fav_large.schedule.throughput(&inst, 0) - 1e-9
        );
        // And the small job is fully served (weight 1/1 vs 1/4 per unit).
        assert!(fav_small.schedule.throughput(&inst, 0) >= 1.0 - 1e-6);
    }

    #[test]
    fn importance_weights_accepted() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 4,
            seed: 6,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let s1 = solve_stage1(&inst).unwrap();
        let w = WeightPolicy::Importance(vec![1.0, 5.0, 1.0, 1.0]);
        let r = solve_stage2_weighted(&inst, s1.z_star, 0.1, &w, &Default::default()).unwrap();
        assert!(r.schedule.max_capacity_violation(&inst) < 1e-6);
    }

    #[test]
    fn warm_start_from_stage1_matches_cold() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 15,
            seed: 11,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let cfg = SimplexConfig::default();
        let s1 = solve_stage1(&inst).unwrap();
        let start = stage2_basis_from_stage1(s1.basis.as_ref().unwrap(), inst.vars.len())
            .expect("stage1/stage2 shapes match by construction");

        let cold = solve_stage2_with(&inst, s1.z_star, 0.1, &cfg).unwrap();
        let warm = solve_stage2_weighted_with_start(
            &inst,
            s1.z_star,
            0.1,
            &WeightPolicy::DemandProportional,
            &cfg,
            Some(&start),
        )
        .unwrap();

        assert!(
            (warm.objective - cold.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert_eq!(warm.stats.warm_starts_accepted, 1, "warm start rejected");
        assert!(
            warm.stats.iterations <= cold.stats.iterations,
            "warm start did more work: {} vs {}",
            warm.stats.iterations,
            cold.stats.iterations
        );
        assert!(warm.schedule.max_capacity_violation(&inst) < 1e-6);
    }

    #[test]
    fn stage1_basis_shape_mismatch_is_none() {
        let b = Basis {
            cols: vec![wavesched_lp::BasisStatus::AtLower; 5],
            rows: vec![],
        };
        assert!(stage2_basis_from_stage1(&b, 5).is_none());
        assert!(stage2_basis_from_stage1(&b, 4).is_some());
    }

    #[test]
    #[should_panic(expected = "one weight per job")]
    fn importance_weights_length_checked() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 3,
            seed: 6,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let w = WeightPolicy::Importance(vec![1.0]);
        let _ = solve_stage2_weighted(&inst, 1.0, 0.1, &w, &Default::default());
    }
}
