//! The Relaxing-End-Times (RET) problem — paper Section II-C.
//!
//! When the network is overloaded and users would rather finish their whole
//! transfer a bit late than truncate it, the controller finds the smallest
//! common factor `(1+b)` by which all end times must be extended so every
//! job completes in full:
//!
//! 1. **SUB-RET** (eqs. 14–16): a feasibility program with the Quick-Finish
//!    objective `min sum_j gamma(j) sum_{i,p} x_i(p,j)`, `gamma(j) = j+1`,
//!    demand-completion rows and windows extended to `I((1+b) E_i)`.
//! 2. **Algorithm 2**: binary search for the smallest `b` making the LP
//!    relaxation feasible, apply LPDAR to the fractional solution, and grow
//!    `b` by `delta` until the integral schedule also completes every job.

use crate::builders::{add_assignment_cols, add_capacity_rows, job_volume_coeffs};
use crate::instance::{Instance, InstanceConfig};
use crate::lpdar::{lpdar_capped, AdjustOrder};
use crate::schedule::Schedule;
use wavesched_lp::{solve_with, Objective, Problem, SimplexConfig, SolveError, Status};
use wavesched_net::{Graph, PathSet};
use wavesched_workload::Job;

/// Completion tolerance used when checking whether a job received its full
/// demand.
pub const COMPLETION_TOL: f64 = 1e-6;

/// How the relaxation factor `(1+b)` is applied to each job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetMode {
    /// Scale absolute end times: `E_i -> (1+b) E_i` (the paper's primary
    /// formulation, eq. 16).
    #[default]
    ExtendEnd,
    /// Scale window lengths: `E_i -> S_i + (1+b)(E_i - S_i)` (the
    /// alternative mentioned in the paper's Section II-C remark; fairer to
    /// jobs that start late, whose absolute ends would otherwise stretch
    /// disproportionately).
    StretchWindow,
}

impl RetMode {
    fn apply(self, job: &Job, b: f64) -> Job {
        match self {
            RetMode::ExtendEnd => job.with_extended_end(b),
            RetMode::StretchWindow => job.with_stretched_window(b),
        }
    }
}

/// Knobs for [`solve_ret`] (Algorithm 2).
#[derive(Debug, Clone)]
pub struct RetConfig {
    /// How `(1+b)` is applied.
    pub mode: RetMode,
    /// Upper end of the binary-search interval for `b`.
    pub b_max: f64,
    /// The δ growth step of Algorithm 2 (0.1 in the paper).
    pub delta: f64,
    /// Binary-search resolution on `b`.
    pub bsearch_tol: f64,
    /// Visit order for the LPDAR adjustment.
    pub order: AdjustOrder,
    /// Simplex settings for every LP solve.
    pub lp: SimplexConfig,
    /// Safety cap on δ-growth iterations.
    pub max_delta_steps: usize,
}

impl Default for RetConfig {
    fn default() -> Self {
        RetConfig {
            mode: RetMode::default(),
            b_max: 4.0,
            delta: 0.1,
            bsearch_tol: 0.01,
            order: AdjustOrder::Paper,
            lp: SimplexConfig::default(),
            max_delta_steps: 60,
        }
    }
}

/// Outcome of Algorithm 2.
#[derive(Debug, Clone)]
pub struct RetResult {
    /// `b̂`: the smallest extension at which the *fractional* SUB-RET is
    /// feasible (binary-search result).
    pub b_lp: f64,
    /// The final extension after δ-growth, at which LPDAR completes all
    /// jobs.
    pub b_final: f64,
    /// The instance at `b_final` (ends extended, grid enlarged).
    pub instance: Instance,
    /// Fractional SUB-RET solution at `b_final`.
    pub lp: Schedule,
    /// Truncated (LPD) solution at `b_final`.
    pub lpd: Schedule,
    /// LPDAR solution at `b_final` — completes every job by construction.
    pub lpdar: Schedule,
    /// Number of LP solves performed (bisection + growth).
    pub lp_solves: usize,
}

impl RetResult {
    /// Fraction of jobs finished by the fractional solution (1.0 whenever
    /// SUB-RET is feasible — completion is a hard constraint).
    pub fn lp_fraction_finished(&self) -> f64 {
        self.lp.fraction_finished(&self.instance, COMPLETION_TOL)
    }

    /// Fraction of jobs the truncated solution finishes (the paper observes
    /// "typically zero").
    pub fn lpd_fraction_finished(&self) -> f64 {
        self.lpd.fraction_finished(&self.instance, COMPLETION_TOL)
    }

    /// Fraction of jobs LPDAR finishes (1.0 by Algorithm 2's termination).
    pub fn lpdar_fraction_finished(&self) -> f64 {
        self.lpdar.fraction_finished(&self.instance, COMPLETION_TOL)
    }

    /// Average end time (slices) of the fractional solution.
    pub fn lp_avg_end_time(&self) -> Option<f64> {
        self.lp.average_end_time(&self.instance, COMPLETION_TOL)
    }

    /// Average end time (slices) of the LPDAR solution.
    pub fn lpdar_avg_end_time(&self) -> Option<f64> {
        self.lpdar.average_end_time(&self.instance, COMPLETION_TOL)
    }
}

/// Builds the SUB-RET problem on an (already end-extended) instance.
///
/// With `quick_finish` the objective is the paper's `gamma(j) = j+1` cost;
/// without, a zero objective turns the solve into a pure feasibility check
/// (phase 1 only).
fn build_subret(inst: &Instance, quick_finish: bool) -> Problem {
    let mut p = Problem::new(Objective::Minimize);
    let cols = add_assignment_cols(&mut p, inst);
    if quick_finish {
        for (var, _, _, slice) in inst.vars.iter() {
            p.set_cost(cols[var], (slice + 1) as f64);
        }
    }
    // Eq. 15: every job moves at least its demand.
    for i in 0..inst.num_jobs() {
        let coeffs = job_volume_coeffs(inst, &cols, i);
        p.add_row(inst.demands[i], f64::INFINITY, &coeffs);
    }
    add_capacity_rows(&mut p, inst, &cols);
    p
}

/// Builds the instance with every window relaxed by `(1+b)` per `mode`.
fn extended_instance(
    graph: &Graph,
    jobs: &[Job],
    demands: &[f64],
    b: f64,
    mode: RetMode,
    cfg: &InstanceConfig,
    pathset: &mut PathSet,
) -> Instance {
    let ext: Vec<Job> = jobs.iter().map(|j| mode.apply(j, b)).collect();
    Instance::build_with_demands(graph, &ext, demands.to_vec(), cfg, pathset)
}

/// Solves the RET problem with Algorithm 2.
///
/// Returns `Ok(None)` when even `b_max` cannot complete all jobs (e.g. a
/// job with no usable path), `Err` on solver breakdown.
pub fn solve_ret(
    graph: &Graph,
    jobs: &[Job],
    inst_cfg: &InstanceConfig,
    cfg: &RetConfig,
) -> Result<Option<RetResult>, SolveError> {
    let demands: Vec<f64> = jobs.iter().map(|j| inst_cfg.demand_units(j.size_gb)).collect();
    solve_ret_with_demands(graph, jobs, &demands, inst_cfg, cfg)
}

/// [`solve_ret`] with explicit normalized demands — used by the periodic
/// controller to complete the *remaining* demand of in-flight jobs.
pub fn solve_ret_with_demands(
    graph: &Graph,
    jobs: &[Job],
    demands: &[f64],
    inst_cfg: &InstanceConfig,
    cfg: &RetConfig,
) -> Result<Option<RetResult>, SolveError> {
    assert!(!jobs.is_empty(), "RET needs at least one job");
    assert_eq!(jobs.len(), demands.len());
    let mut pathset = PathSet::new(inst_cfg.paths_per_job);
    let mut lp_solves = 0usize;

    let mut feasible = |b: f64, lp_solves: &mut usize| -> Result<bool, SolveError> {
        let inst = extended_instance(graph, jobs, demands, b, cfg.mode, inst_cfg, &mut pathset);
        if inst.has_unschedulable_job() {
            return Ok(false);
        }
        let p = build_subret(&inst, false);
        *lp_solves += 1;
        let sol = solve_with(&p, &cfg.lp)?;
        Ok(sol.status == Status::Optimal)
    };

    // Step 1: binary search for the smallest feasible b (fractional).
    let b_lp = if feasible(0.0, &mut lp_solves)? {
        0.0
    } else if !feasible(cfg.b_max, &mut lp_solves)? {
        return Ok(None);
    } else {
        let (mut lo, mut hi) = (0.0, cfg.b_max);
        while hi - lo > cfg.bsearch_tol {
            let mid = 0.5 * (lo + hi);
            if feasible(mid, &mut lp_solves)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };
    // End the closure's mutable borrow of `pathset`.
    #[allow(clippy::drop_non_drop)]
    drop(feasible);

    // Steps 2–5: solve with Quick-Finish, discretize with LPDAR, grow b by
    // delta until the integral schedule completes everything.
    let mut b = b_lp;
    for _ in 0..cfg.max_delta_steps {
        let inst = extended_instance(graph, jobs, demands, b, cfg.mode, inst_cfg, &mut pathset);
        let p = build_subret(&inst, true);
        lp_solves += 1;
        let sol = solve_with(&p, &cfg.lp)?;
        if sol.status == Status::Optimal {
            let lp_sched = Schedule::from_values(&inst, sol.x[..inst.vars.len()].to_vec());
            let lpd = crate::lpdar::truncate(&inst, &lp_sched);
            let adj = lpdar_capped(&inst, &lp_sched, cfg.order);
            let all_done = (0..inst.num_jobs())
                .all(|i| adj.completes(&inst, i, COMPLETION_TOL));
            if all_done {
                return Ok(Some(RetResult {
                    b_lp,
                    b_final: b,
                    lp: lp_sched,
                    lpd,
                    lpdar: adj,
                    instance: inst,
                    lp_solves,
                }));
            }
        }
        b += cfg.delta;
        if b > cfg.b_max + cfg.delta {
            break;
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesched_net::abilene14;
    use wavesched_workload::{JobId, WorkloadConfig, WorkloadGenerator};

    fn overloaded_jobs(n: usize, seed: u64) -> (Graph, Vec<Job>) {
        let (g, _) = abilene14(2);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed,
            size_gb: (50.0, 100.0),
            window: (4.0, 8.0), // short windows force overload
            ..Default::default()
        })
        .generate(&g);
        (g, jobs)
    }

    #[test]
    fn ret_completes_all_jobs() {
        let (g, jobs) = overloaded_jobs(10, 2);
        let cfg = InstanceConfig::paper(2);
        let r = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
            .unwrap()
            .expect("RET should find an extension");
        assert_eq!(r.lpdar_fraction_finished(), 1.0);
        assert_eq!(r.lp_fraction_finished(), 1.0);
        assert!(r.b_final >= r.b_lp);
        assert!(r.lpdar.is_integral(1e-9));
        assert!(r.lpdar.max_capacity_violation(&r.instance) < 1e-9);
    }

    #[test]
    fn lpd_finishes_fewer_than_lpdar() {
        let (g, jobs) = overloaded_jobs(12, 7);
        let cfg = InstanceConfig::paper(2);
        let r = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        assert!(
            r.lpd_fraction_finished() <= r.lpdar_fraction_finished(),
            "LPD {} > LPDAR {}",
            r.lpd_fraction_finished(),
            r.lpdar_fraction_finished()
        );
    }

    #[test]
    fn underloaded_needs_no_extension() {
        let (g, _) = abilene14(8);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 3,
            seed: 1,
            size_gb: (1.0, 5.0),
            window: (16.0, 24.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(8);
        let r = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(r.b_lp, 0.0);
        assert_eq!(r.lpdar_fraction_finished(), 1.0);
    }

    #[test]
    fn quick_finish_packs_early() {
        // With plenty of slack, the QF objective should finish jobs well
        // before the extended deadline.
        let (g, nodes) = abilene14(4);
        let job = Job::new(JobId(0), 0.0, nodes[0], nodes[4], 75.0, 0.0, 20.0);
        let cfg = InstanceConfig::paper(4);
        let r = solve_ret(&g, &[job], &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        let t = r.lpdar_avg_end_time().unwrap();
        assert!(t <= 3.0, "QF should finish early, got {t}");
    }

    #[test]
    fn stretch_window_mode_completes() {
        let (g, jobs) = overloaded_jobs(8, 4);
        let cfg = InstanceConfig::paper(2);
        let ret_cfg = RetConfig {
            mode: RetMode::StretchWindow,
            ..RetConfig::default()
        };
        let r = solve_ret(&g, &jobs, &cfg, &ret_cfg)
            .unwrap()
            .expect("stretch mode feasible");
        assert_eq!(r.lpdar_fraction_finished(), 1.0);
        // Start times are preserved by the stretch.
        for (orig, ext) in jobs.iter().zip(&r.instance.jobs) {
            assert_eq!(orig.start, ext.start);
            assert!(ext.end >= orig.end - 1e-12);
        }
    }

    #[test]
    fn impossible_job_returns_none() {
        // Disconnected destination: no extension helps.
        let mut g = Graph::new();
        let ns = g.add_nodes(3);
        g.add_link_pair(ns[0], ns[1], 2);
        // ns[2] is isolated.
        let job = Job::new(JobId(0), 0.0, ns[0], ns[2], 10.0, 0.0, 4.0);
        let cfg = InstanceConfig::paper(2);
        let r = solve_ret(&g, &[job], &cfg, &RetConfig::default()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn b_lp_close_to_analytic() {
        // Single job, single 1-wavelength link, demand 8 units, window 4
        // slices => needs end extended to 8 slices: b ~ 1.0.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let job = Job::new(JobId(0), 0.0, ns[0], ns[1], 1200.0, 0.0, 4.0);
        let cfg = InstanceConfig::paper(1);
        let r = solve_ret(&g, &[job], &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        assert!(
            (r.b_lp - 1.0).abs() <= 0.02,
            "expected b ~ 1.0, got {}",
            r.b_lp
        );
    }
}
