//! The Relaxing-End-Times (RET) problem — paper Section II-C.
//!
//! When the network is overloaded and users would rather finish their whole
//! transfer a bit late than truncate it, the controller finds the smallest
//! common factor `(1+b)` by which all end times must be extended so every
//! job completes in full:
//!
//! 1. **SUB-RET** (eqs. 14–16): a feasibility program with the Quick-Finish
//!    objective `min sum_j gamma(j) sum_{i,p} x_i(p,j)`, `gamma(j) = j+1`,
//!    demand-completion rows and windows extended to `I((1+b) E_i)`.
//! 2. **Algorithm 2**: binary search for the smallest `b` making the LP
//!    relaxation feasible, apply LPDAR to the fractional solution, and grow
//!    `b` by `delta` until the integral schedule also completes every job.

use crate::builders::{add_assignment_cols, add_capacity_rows, job_volume_coeffs};
use crate::colgen::{price_resolve, price_resolve_until, CgMaster, CgStats, ColGenConfig, Pricer};
use crate::instance::{Instance, InstanceConfig};
use crate::lpdar::{lpdar_capped, AdjustOrder};
use crate::schedule::Schedule;
use std::collections::BTreeMap;
use std::ops::Range;
use wavesched_lp::{
    solve_with, Basis, Col, Objective, Problem, SimplexConfig, SolveError, SolveStats,
    SolverSession, Status,
};
use wavesched_net::{Graph, PathSet};
use wavesched_obs as obs;
use wavesched_workload::Job;

/// Completion tolerance used when checking whether a job received its full
/// demand.
pub const COMPLETION_TOL: f64 = 1e-6;

/// How the relaxation factor `(1+b)` is applied to each job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetMode {
    /// Scale absolute end times: `E_i -> (1+b) E_i` (the paper's primary
    /// formulation, eq. 16).
    #[default]
    ExtendEnd,
    /// Scale window lengths: `E_i -> S_i + (1+b)(E_i - S_i)` (the
    /// alternative mentioned in the paper's Section II-C remark; fairer to
    /// jobs that start late, whose absolute ends would otherwise stretch
    /// disproportionately).
    StretchWindow,
}

impl RetMode {
    fn apply(self, job: &Job, b: f64) -> Job {
        match self {
            RetMode::ExtendEnd => job.with_extended_end(b),
            RetMode::StretchWindow => job.with_stretched_window(b),
        }
    }
}

/// Knobs for [`solve_ret`] (Algorithm 2).
#[derive(Debug, Clone)]
pub struct RetConfig {
    /// How `(1+b)` is applied.
    pub mode: RetMode,
    /// Upper end of the binary-search interval for `b`.
    pub b_max: f64,
    /// The δ growth step of Algorithm 2 (0.1 in the paper).
    pub delta: f64,
    /// Binary-search resolution on `b`.
    pub bsearch_tol: f64,
    /// Visit order for the LPDAR adjustment.
    pub order: AdjustOrder,
    /// Simplex settings for every LP solve.
    pub lp: SimplexConfig,
    /// Safety cap on δ-growth iterations.
    pub max_delta_steps: usize,
    /// Answer the bisection's feasibility probes on clones of a template
    /// [`SolverSession`] built (and solved once) at `b_max`, warm-starting
    /// every probe from that optimal basis (see [`solve_ret`]). Disable to
    /// force a fresh cold solve per probe; the search trajectory and the
    /// returned schedules are identical either way — only the work counters
    /// differ.
    pub warm_start: bool,
    /// Worker threads for speculative bisection probing: each round
    /// evaluates the next `d` midpoint levels of the search tree
    /// (`2^d − 1 <= threads`) concurrently, each probe on its own clone of
    /// the warm template, then walks only the realized path. Probe answers
    /// are pure functions of `b`, so `b̂`, the schedules, and the merged
    /// work counters are bit-identical for every thread count. `0` (the
    /// default) resolves from the `WS_THREADS` environment knob; `1` probes
    /// serially on the calling thread. Ignored when `warm_start` is off —
    /// cold probes rebuild instances through a shared path cache and stay
    /// serial.
    pub threads: usize,
}

impl Default for RetConfig {
    fn default() -> Self {
        RetConfig {
            mode: RetMode::default(),
            b_max: 4.0,
            delta: 0.1,
            bsearch_tol: 0.01,
            order: AdjustOrder::Paper,
            lp: SimplexConfig::default(),
            max_delta_steps: 60,
            warm_start: true,
            threads: 0,
        }
    }
}

/// Outcome of Algorithm 2.
#[derive(Debug, Clone)]
pub struct RetResult {
    /// `b̂`: the smallest extension at which the *fractional* SUB-RET is
    /// feasible (binary-search result).
    pub b_lp: f64,
    /// The final extension after δ-growth, at which LPDAR completes all
    /// jobs.
    pub b_final: f64,
    /// The instance at `b_final` (ends extended, grid enlarged).
    pub instance: Instance,
    /// Fractional SUB-RET solution at `b_final`.
    pub lp: Schedule,
    /// Truncated (LPD) solution at `b_final`.
    pub lpd: Schedule,
    /// LPDAR solution at `b_final` — completes every job by construction.
    pub lpdar: Schedule,
    /// Aggregated solver work over every LP solve Algorithm 2 performed
    /// (bisection probes + δ-growth), including warm-start accounting.
    pub stats: SolveStats,
}

impl RetResult {
    /// Number of LP solves performed (bisection + growth), derived from
    /// [`RetResult::stats`].
    pub fn lp_solves(&self) -> usize {
        self.stats.solves as usize
    }
    /// Fraction of jobs finished by the fractional solution (1.0 whenever
    /// SUB-RET is feasible — completion is a hard constraint).
    pub fn lp_fraction_finished(&self) -> f64 {
        self.lp.fraction_finished(&self.instance, COMPLETION_TOL)
    }

    /// Fraction of jobs the truncated solution finishes (the paper observes
    /// "typically zero").
    pub fn lpd_fraction_finished(&self) -> f64 {
        self.lpd.fraction_finished(&self.instance, COMPLETION_TOL)
    }

    /// Fraction of jobs LPDAR finishes (1.0 by Algorithm 2's termination).
    pub fn lpdar_fraction_finished(&self) -> f64 {
        self.lpdar.fraction_finished(&self.instance, COMPLETION_TOL)
    }

    /// Average end time (slices) of the fractional solution.
    pub fn lp_avg_end_time(&self) -> Option<f64> {
        self.lp.average_end_time(&self.instance, COMPLETION_TOL)
    }

    /// Average end time (slices) of the LPDAR solution.
    pub fn lpdar_avg_end_time(&self) -> Option<f64> {
        self.lpdar.average_end_time(&self.instance, COMPLETION_TOL)
    }
}

/// Tolerance on the probe LP's completion ratio: SUB-RET counts as feasible
/// when every job can reach at least `1 - RET_PROBE_TOL` of its demand.
const RET_PROBE_TOL: f64 = 1e-6;

/// Builds the SUB-RET problem (Quick-Finish objective, eqs. 14–16) on an
/// (already end-extended) instance.
fn build_subret(inst: &Instance) -> Problem {
    let mut p = Problem::new(Objective::Minimize);
    let (mut cols, mut coeffs) = (Vec::new(), Vec::new());
    add_assignment_cols(&mut p, inst, &mut cols);
    for (var, _, _, slice) in inst.vars.iter() {
        p.set_cost(cols[var], (slice + 1) as f64);
    }
    // Eq. 15: every job moves at least its demand.
    for i in 0..inst.num_jobs() {
        job_volume_coeffs(inst, &cols, i, &mut coeffs);
        p.add_row(inst.demands[i], f64::INFINITY, &coeffs);
    }
    add_capacity_rows(&mut p, inst, &cols, &mut coeffs);
    p
}

/// Builds the bisection's feasibility probe as an always-feasible LP:
/// maximize the common completion ratio `z` (capped at 1) subject to
/// `volume_i >= z D_i` — Stage 1's question with completion inequalities.
/// SUB-RET at the same windows is feasible exactly when `z* = 1`; testing
/// `z* >= 1 - RET_PROBE_TOL` makes the check robust. Because `x = 0, z = 0`
/// is always feasible, a warm start never has to prove infeasibility — the
/// situation where a warm simplex must discard its basis — so re-solves in
/// a session stay warm across the whole search.
fn build_probe(inst: &Instance) -> Problem {
    let mut p = Problem::new(Objective::Maximize);
    let (mut cols, mut coeffs) = (Vec::new(), Vec::new());
    add_assignment_cols(&mut p, inst, &mut cols);
    let z = p.add_col(0.0, 1.0, 1.0);
    for i in 0..inst.num_jobs() {
        job_volume_coeffs(inst, &cols, i, &mut coeffs);
        coeffs.push((z, -inst.demands[i]));
        p.add_row(0.0, f64::INFINITY, &coeffs);
    }
    add_capacity_rows(&mut p, inst, &cols, &mut coeffs);
    p
}

/// Answers the bisection's feasibility questions `feasible(b)?`.
///
/// Both modes answer through the same [`build_probe`] LP, so the probe
/// answers — and therefore the bisection trajectory and `b̂` — never depend
/// on `warm_start`. With warm starts enabled, that LP is built **once** at
/// `b_max` — whose variable space contains every probe's, since windows
/// only grow with `b` — and each probe runs on a **clone** of that template
/// session with column bounds retightened: variables of slices outside a
/// job's window at the trial `b` are fixed to `[0, 0]`, the rest restored
/// to `[0, bottleneck]`. That restricted LP asks the same question as the
/// instance built directly at `b` (the extra capacity rows are satisfied
/// trivially by the zeros, and the completion rows reduce to the in-window
/// sums).
///
/// The template is solved lazily and re-anchored at fixed points of the
/// realized sequence: the opening `feasible(0.0)` probe clones it
/// *unsolved* (a cold solve, exactly like the cold mode's first probe); the
/// `b_max` probe and the first bisection midpoint re-solve the template
/// **in place** (see [`WarmProbe::probe_in_place`]); every other probe runs
/// on a clone, warm-starting from the anchored optimal basis. Between
/// anchor points the template is constant, so a probe's answer *and its
/// work counters* are pure functions of `b` — the property that lets
/// [`Prober::bisect`] evaluate speculative midpoints in parallel and still
/// merge bit-identical realized stats at every pool width. Structural
/// trouble degrades to a cold solve inside the clone, never to a wrong
/// answer.
/// The probes' LP settings: the configured simplex options plus
/// candidate-list partial pricing. A probe's answer is a threshold test on
/// the optimal *objective* — unique for an LP — never on the particular
/// optimal vertex, so the vertex drift partial pricing allows on degenerate
/// faces cannot change probe answers. The δ-growth and other
/// schedule-bearing solves keep the exhaustive scan: their LPDAR rounding
/// is a function of the vertex itself.
fn probe_lp(cfg: &RetConfig) -> SimplexConfig {
    SimplexConfig {
        partial_pricing: true,
        ..cfg.lp.clone()
    }
}

struct Prober<'a> {
    graph: &'a Graph,
    jobs: &'a [Job],
    demands: &'a [f64],
    inst_cfg: &'a InstanceConfig,
    cfg: &'a RetConfig,
    pathset: &'a mut PathSet,
    warm: Option<WarmProbe>,
    /// Resolved probe-pool width (`cfg.threads`, `0` → `WS_THREADS`).
    width: usize,
    stats: SolveStats,
}

/// A warm probe's outcome: `(feasible, work, solved session if any)`.
type ProbeResult = Result<(bool, SolveStats, Option<SolverSession>), SolveError>;

/// The reusable probe template (see [`Prober`]).
struct WarmProbe {
    /// The instance at `b_max`; every probe's windows nest inside its own.
    inst: Instance,
    /// The template session; unsolved until [`Prober`] needs the `b_max`
    /// answer, then solved in place so clones inherit the optimal basis.
    template: SolverSession,
    /// Per-variable upper bound (the path's bottleneck wavelength count).
    upper: Vec<f64>,
}

impl WarmProbe {
    /// Windows at trial `b`, on the `b_max` grid; `None` when some job's
    /// window is empty (mirrors the cold path's `has_unschedulable_job`
    /// check: the probe then answers `false` without an LP solve). The grid
    /// is uniform, so a window that fits under the `b_max` horizon is the
    /// same range the shorter grid of the `b`-instance would produce.
    fn windows_at(&self, jobs: &[Job], mode: RetMode, b: f64) -> Option<Vec<Range<usize>>> {
        let mut windows: Vec<Range<usize>> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let ext = mode.apply(job, b);
            let w = self.inst.grid.window_slices(ext.start, ext.end);
            if w.is_empty() {
                return None;
            }
            windows.push(w);
        }
        Some(windows)
    }

    /// Retightens `session`'s column bounds to the given windows: variables
    /// of out-of-window slices fixed to `[0, 0]`, the rest restored to
    /// `[0, bottleneck]`. (An associated function over split fields so it
    /// can also target the template itself.)
    fn apply_windows(
        inst: &Instance,
        upper: &[f64],
        session: &mut SolverSession,
        windows: &[Range<usize>],
    ) {
        for (var, job, _, slice) in inst.vars.iter() {
            let ub = if windows[job].contains(&slice) {
                upper[var]
            } else {
                0.0
            };
            session.set_col_bounds(Col::from_index(var), 0.0, ub);
        }
    }

    /// One feasibility probe at extension `b`, on a fresh clone of the
    /// template: a **pure function** of `b` (and the fixed template state) —
    /// no shared mutation, so probes may run concurrently and a probe's
    /// `(answer, stats)` never depends on which other probes ran. The
    /// solved clone is returned so the caller may adopt a *realized*
    /// probe's basis as the next template (`None` when the probe answered
    /// without solving).
    ///
    /// A solved template also carries a *valid basis factorization*, and
    /// the clone inherits it: the window retightening is a bound-only
    /// edit, so the probe's solve enters through the factorization-reuse
    /// path (`SolveStats::lu_reuse_hits`) and skips `Lu::factor` entirely
    /// — the dominant cost of a few-pivot probe. Purity is unaffected:
    /// every clone starts from the identical carried factors.
    fn probe(&self, jobs: &[Job], mode: RetMode, b: f64) -> ProbeResult {
        let _span = obs::span("ret_probe");
        let Some(windows) = self.windows_at(jobs, mode, b) else {
            return Ok((false, SolveStats::default(), None));
        };
        let mut session = self.template.clone();
        Self::apply_windows(&self.inst, &self.upper, &mut session, &windows);
        let sol = session.solve()?;
        Ok((
            sol.status == Status::Optimal && sol.objective >= 1.0 - RET_PROBE_TOL,
            sol.stats,
            Some(session),
        ))
    }

    /// Like [`WarmProbe::probe`], but re-solves the template **in place**,
    /// re-anchoring the basis every later clone warm-starts from. Used at
    /// two fixed points of the realized sequence — the `b_max` probe and
    /// the first bisection midpoint — so the policy is independent of the
    /// pool width and probe purity still holds for everything after.
    fn probe_in_place(
        &mut self,
        jobs: &[Job],
        mode: RetMode,
        b: f64,
    ) -> Result<(bool, SolveStats), SolveError> {
        let _span = obs::span("ret_probe");
        let Some(windows) = self.windows_at(jobs, mode, b) else {
            return Ok((false, SolveStats::default()));
        };
        let WarmProbe {
            inst,
            template,
            upper,
        } = self;
        Self::apply_windows(inst, upper, template, &windows);
        let sol = template.solve()?;
        Ok((
            sol.status == Status::Optimal && sol.objective >= 1.0 - RET_PROBE_TOL,
            sol.stats,
        ))
    }
}

impl<'a> Prober<'a> {
    /// Levels of the midpoint tree covered per bisection round. Fixed (not
    /// width-derived) because the round boundaries decide where the
    /// template re-anchors: a width-dependent depth would give different
    /// widths different warm-start anchors and break bit-identical work
    /// counters. Depth 2 (three candidate probes) fits pools of 3–4
    /// workers exactly and still halves the rounds for wider ones.
    const ROUND_DEPTH: usize = 2;

    fn new(
        graph: &'a Graph,
        jobs: &'a [Job],
        demands: &'a [f64],
        inst_cfg: &'a InstanceConfig,
        cfg: &'a RetConfig,
        pathset: &'a mut PathSet,
    ) -> Result<Self, SolveError> {
        let mut warm = None;
        if cfg.warm_start {
            let inst =
                extended_instance(graph, jobs, demands, cfg.b_max, cfg.mode, inst_cfg, pathset);
            // An unschedulable job at b_max stays unschedulable at every
            // smaller b (windows shrink, paths don't change); the cold
            // probes then answer without solving, so a session is useless.
            if !inst.has_unschedulable_job() {
                let p = build_probe(&inst);
                let template = SolverSession::with_config(&p, &probe_lp(cfg))?;
                let upper = bottleneck_uppers(&inst);
                warm = Some(WarmProbe {
                    inst,
                    template,
                    upper,
                });
            }
        }
        Ok(Prober {
            graph,
            jobs,
            demands,
            inst_cfg,
            cfg,
            pathset,
            warm,
            width: wavesched_par::resolve_threads(cfg.threads),
            stats: SolveStats::default(),
        })
    }

    /// Algorithm 2's binary search: the smallest `b` (to `bsearch_tol`) at
    /// which the fractional SUB-RET is feasible, or `None` when even
    /// `b_max` fails. Runs the opening probes, then [`Prober::bisect`].
    fn search(&mut self) -> Result<Option<f64>, SolveError> {
        // The opening probes are fixed points of the realized sequence at
        // every width, so they may all anchor the template in place,
        // chaining their warm starts: b = 0 solves cold (the template is
        // fresh), b_max warms from the b = 0 basis.
        if self.feasible_anchoring(0.0)? {
            return Ok(Some(0.0));
        }
        if !self.feasible_top()? {
            return Ok(None);
        }
        self.bisect(0.0, self.cfg.b_max).map(Some)
    }

    /// Is the fractional SUB-RET feasible at extension `b`? (A *realized*
    /// probe: counted and merged into the returned stats.)
    fn feasible(&mut self, b: f64) -> Result<bool, SolveError> {
        obs::counter_add("ret.probes", 1);
        match &self.warm {
            Some(wp) => {
                let (ans, stats, _) = wp.probe(self.jobs, self.cfg.mode, b)?;
                self.stats.merge(&stats);
                Ok(ans)
            }
            None => self.feasible_cold(b),
        }
    }

    /// The probe at `b_max`. In warm mode this solves the template **in
    /// place**, so later probes warm-start from an optimal basis.
    fn feasible_top(&mut self) -> Result<bool, SolveError> {
        let b = self.cfg.b_max;
        self.feasible_anchoring(b)
    }

    /// A realized probe that, in warm mode, re-solves the template in place
    /// at `b`, re-anchoring the basis every later clone starts from. Called
    /// at fixed points of the realized sequence only (the `b_max` probe and
    /// the first bisection midpoint), so the template state seen by all
    /// other probes stays independent of the pool width.
    fn feasible_anchoring(&mut self, b: f64) -> Result<bool, SolveError> {
        obs::counter_add("ret.probes", 1);
        let (jobs, mode) = (self.jobs, self.cfg.mode);
        match &mut self.warm {
            Some(wp) => {
                let (ans, stats) = wp.probe_in_place(jobs, mode, b)?;
                self.stats.merge(&stats);
                Ok(ans)
            }
            None => self.feasible_cold(b),
        }
    }

    /// The bisection proper, between an infeasible `lo` and a feasible
    /// `hi`.
    ///
    /// Warm mode proceeds in rounds of a **fixed** depth
    /// [`Self::ROUND_DEPTH`]: each round covers the next `D` levels of the
    /// midpoint tree (the `2^D − 1` candidate midpoints), every probe a
    /// pure clone-solve of the round-entry template. With a pool width
    /// over one, the whole round is evaluated concurrently up front
    /// (speculation); serially, only realized midpoints are probed — in
    /// both cases the walk merges the realized probes' stats, counts them
    /// in `ret.probes`, and finally installs the last realized probe's
    /// solved session as the next round's template, so warm-start anchors
    /// converge toward `b̂` like a chained search would. The round
    /// structure, the realized trajectory, and the installed anchors are
    /// all independent of the pool width, so `b̂` and the merged stats are
    /// bit-identical to the serial walk; mis-speculated probes cost only
    /// wasted wall clock on otherwise-idle workers (reported under
    /// `ret.speculative_probes`).
    fn bisect(&mut self, lo: f64, hi: f64) -> Result<f64, SolveError> {
        let tol = self.cfg.bsearch_tol;
        let (mut lo, mut hi) = (lo, hi);
        if self.warm.is_none() {
            while hi - lo > tol {
                let mid = 0.5 * (lo + hi);
                if self.feasible(mid)? {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            return Ok(hi);
        }

        while hi - lo > tol {
            let mut cands: Vec<f64> = Vec::with_capacity((1 << Self::ROUND_DEPTH) - 1);
            collect_midpoints(lo, hi, Self::ROUND_DEPTH, tol, &mut cands);
            // lint: allow(lib-unwrap, reason = "invariant: the warm-probe branch is only entered after `self.warm` was populated")
            let wp = self.warm.as_ref().expect("invariant: warm pack present");
            let (jobs, mode) = (self.jobs, self.cfg.mode);
            // Speculate the full round when workers are available; probe
            // lazily (realized midpoints only) on a width-1 pool.
            let mut by_bits: BTreeMap<u64, ProbeResult> = if self.width > 1 {
                let answers = wavesched_par::par_map_with(self.cfg.threads, &cands, |&b| {
                    wp.probe(jobs, mode, b)
                });
                obs::counter_add("ret.speculative_probes", cands.len() as u64);
                cands
                    .iter()
                    .zip(answers)
                    .map(|(b, r)| (b.to_bits(), r))
                    .collect()
            } else {
                BTreeMap::new()
            };
            // Walk the realized path. Midpoints are pure functions of
            // (lo, hi), so a speculated round was built over exactly these
            // bit patterns; errors on mis-speculated probes are discarded
            // with them — only a realized probe's error surfaces, as in
            // the serial walk.
            let mut last_realized: Option<SolverSession> = None;
            for _ in 0..Self::ROUND_DEPTH {
                if hi - lo <= tol {
                    break;
                }
                let mid = 0.5 * (lo + hi);
                let (ans, stats, session) = match by_bits.remove(&mid.to_bits()) {
                    Some(r) => r?,
                    None => wp.probe(jobs, mode, mid)?,
                };
                obs::counter_add("ret.probes", 1);
                self.stats.merge(&stats);
                if let Some(s) = session {
                    last_realized = Some(s);
                }
                if ans {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            // Re-anchor for the next round on the last realized basis (a
            // pure function of the realized trajectory — width-independent).
            if let Some(s) = last_realized {
                self.warm
                    .as_mut()
                    // lint: allow(lib-unwrap, reason = "invariant: same warm-probe branch; `self.warm` was populated before the round started")
                    .expect("invariant: warm pack present")
                    .template = s;
            }
        }
        Ok(hi)
    }

    /// The per-probe cold path: build the instance and the probe LP at `b`
    /// and solve from scratch.
    fn feasible_cold(&mut self, b: f64) -> Result<bool, SolveError> {
        let _span = obs::span("ret_probe");
        let inst = extended_instance(
            self.graph,
            self.jobs,
            self.demands,
            b,
            self.cfg.mode,
            self.inst_cfg,
            self.pathset,
        );
        if inst.has_unschedulable_job() {
            return Ok(false);
        }
        let p = build_probe(&inst);
        let sol = solve_with(&p, &probe_lp(self.cfg))?;
        self.stats.merge(&sol.stats);
        Ok(sol.status == Status::Optimal && sol.objective >= 1.0 - RET_PROBE_TOL)
    }

    /// Ends probing, releasing the path cache and yielding the work done.
    fn finish(self) -> SolveStats {
        self.stats
    }
}

/// Pre-order collection of the bisection tree's candidate midpoints to
/// `depth` levels below `[lo, hi]`, skipping subtrees the walk could never
/// enter (intervals already within `tol`).
fn collect_midpoints(lo: f64, hi: f64, depth: usize, tol: f64, out: &mut Vec<f64>) {
    if depth == 0 || hi - lo <= tol {
        return;
    }
    let mid = 0.5 * (lo + hi);
    out.push(mid);
    collect_midpoints(lo, mid, depth - 1, tol, out);
    collect_midpoints(mid, hi, depth - 1, tol, out);
}

/// How [`probe_sequence_stats`] re-solves consecutive probes. Bench
/// support (see `crates/bench/benches/warm.rs`): isolates what each layer
/// of the warm-start story buys on the probe sequence alone.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResolveMode {
    /// Fresh session per probe: every probe pays a full cold solve.
    Cold,
    /// One chained session, but each probe re-feeds the previous optimal
    /// basis via `warm_start_from` — the provenance downgrade forces the
    /// primal warm ladder (phase-1 bound-shift repair), i.e. the pre-dual
    /// behavior of the session layer.
    PrimalWarm,
    /// One chained session left to its own selection: bound-only edits
    /// between optimal solves take the dual simplex path.
    SessionWarm,
}

/// Bench support: replays the RET bisection probe sequence serially on the
/// `b_max` envelope probe LP under an explicit re-solve strategy, returning
/// `(b̂, probe-sequence work counters)` — `None` when some job is
/// unschedulable even at `b_max`. All three modes ask the identical LP
/// question per trial `b` (the envelope LP with out-of-window columns fixed
/// to zero), so `b̂` is mode-independent and the counters isolate exactly
/// the re-solve strategy.
#[doc(hidden)]
pub fn probe_sequence_stats(
    graph: &Graph,
    jobs: &[Job],
    inst_cfg: &InstanceConfig,
    cfg: &RetConfig,
    mode: ProbeResolveMode,
) -> Result<Option<(f64, SolveStats)>, SolveError> {
    let demands: Vec<f64> = jobs
        .iter()
        .map(|j| inst_cfg.demand_units(j.size_gb))
        .collect();
    let mut pathset = PathSet::new(inst_cfg.paths_per_job);
    let inst = extended_instance(
        graph,
        jobs,
        &demands,
        cfg.b_max,
        cfg.mode,
        inst_cfg,
        &mut pathset,
    );
    if inst.has_unschedulable_job() {
        return Ok(None);
    }
    let p = build_probe(&inst);
    let upper = bottleneck_uppers(&inst);
    let lp = probe_lp(cfg);
    let mut session = SolverSession::with_config(&p, &lp)?;
    let mut carried: Option<Basis> = None;
    let mut stats = SolveStats::default();

    let probe = |b: f64,
                 session: &mut SolverSession,
                 carried: &mut Option<Basis>,
                 stats: &mut SolveStats|
     -> Result<bool, SolveError> {
        let mut windows: Vec<Range<usize>> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let ext = cfg.mode.apply(job, b);
            let w = inst.grid.window_slices(ext.start, ext.end);
            if w.is_empty() {
                return Ok(false);
            }
            windows.push(w);
        }
        if mode == ProbeResolveMode::Cold {
            *session = SolverSession::with_config(&p, &lp)?;
        }
        for (var, job, _, slice) in inst.vars.iter() {
            let ub = if windows[job].contains(&slice) {
                upper[var]
            } else {
                0.0
            };
            session.set_col_bounds(Col::from_index(var), 0.0, ub);
        }
        if mode == ProbeResolveMode::PrimalWarm {
            if let Some(basis) = carried.take() {
                session.warm_start_from(basis);
            }
        }
        let sol = session.solve()?;
        if mode == ProbeResolveMode::PrimalWarm && sol.status == Status::Optimal {
            *carried = sol.basis.clone();
        }
        stats.merge(&sol.stats);
        Ok(sol.status == Status::Optimal && sol.objective >= 1.0 - RET_PROBE_TOL)
    };

    let b_hat = if probe(0.0, &mut session, &mut carried, &mut stats)? {
        0.0
    } else if !probe(cfg.b_max, &mut session, &mut carried, &mut stats)? {
        return Ok(None);
    } else {
        let (mut lo, mut hi) = (0.0, cfg.b_max);
        while hi - lo > cfg.bsearch_tol {
            let mid = 0.5 * (lo + hi);
            if probe(mid, &mut session, &mut carried, &mut stats)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };
    Ok(Some((b_hat, stats)))
}

/// Per-variable upper bounds for an instance's assignment columns: the
/// bottleneck wavelength count of the variable's path.
fn bottleneck_uppers(inst: &Instance) -> Vec<f64> {
    inst.vars
        .iter()
        .map(|(_, job, path, _)| inst.paths[job][path].bottleneck_wavelengths(&inst.graph) as f64)
        .collect()
}

/// The δ-growth loop's Quick-Finish solver: one SUB-RET LP on the `b_max`
/// envelope, re-solved per step with column bounds retightened to the
/// step's windows and warm-started from the previous step's optimal basis.
///
/// Used in **both** warm and cold [`RetConfig`] modes: consecutive δ-steps
/// run the exact same deterministic call sequence either way, so the
/// fractional points — and therefore the LPDAR schedules and `b_final` —
/// cannot depend on `warm_start`. (Probing is where the modes differ; see
/// [`Prober`].)
struct GrowthSession {
    inst: Instance,
    session: SolverSession,
    upper: Vec<f64>,
}

impl GrowthSession {
    fn new(inst: Instance, lp: &SimplexConfig) -> Result<Self, SolveError> {
        let p = build_subret(&inst);
        let session = SolverSession::with_config(&p, lp)?;
        let upper = bottleneck_uppers(&inst);
        Ok(GrowthSession {
            inst,
            session,
            upper,
        })
    }

    /// Solves the Quick-Finish SUB-RET at extension `b` and maps the
    /// solution onto `inst_b` (the instance built directly at `b`, whose
    /// windows nest inside the envelope's). Returns the status and, when
    /// optimal, the values over `inst_b`'s variables.
    fn solve_step(
        &mut self,
        inst_b: &Instance,
        jobs: &[Job],
        mode: RetMode,
        b: f64,
        stats: &mut SolveStats,
    ) -> Result<(Status, Option<Vec<f64>>), SolveError> {
        let windows: Vec<Range<usize>> = jobs
            .iter()
            .map(|job| {
                let ext = mode.apply(job, b);
                self.inst.grid.window_slices(ext.start, ext.end)
            })
            .collect();
        for (var, job, _, slice) in self.inst.vars.iter() {
            let ub = if windows[job].contains(&slice) {
                self.upper[var]
            } else {
                0.0
            };
            self.session.set_col_bounds(Col::from_index(var), 0.0, ub);
        }
        let sol = self.session.solve()?;
        stats.merge(&sol.stats);
        let x = (sol.status == Status::Optimal).then(|| {
            inst_b
                .vars
                .iter()
                .map(|(_, job, path, slice)| sol.x[self.inst.vars.var(job, path, slice)])
                .collect()
        });
        Ok((sol.status, x))
    }
}

/// Builds the instance with every window relaxed by `(1+b)` per `mode`.
fn extended_instance(
    graph: &Graph,
    jobs: &[Job],
    demands: &[f64],
    b: f64,
    mode: RetMode,
    cfg: &InstanceConfig,
    pathset: &mut PathSet,
) -> Instance {
    let ext: Vec<Job> = jobs.iter().map(|j| mode.apply(j, b)).collect();
    Instance::build_with_demands(graph, &ext, demands.to_vec(), cfg, pathset)
}

/// Solves the RET problem with Algorithm 2.
///
/// Returns `Ok(None)` when even `b_max` cannot complete all jobs (e.g. a
/// job with no usable path), `Err` on solver breakdown.
pub fn solve_ret(
    graph: &Graph,
    jobs: &[Job],
    inst_cfg: &InstanceConfig,
    cfg: &RetConfig,
) -> Result<Option<RetResult>, SolveError> {
    let demands: Vec<f64> = jobs
        .iter()
        .map(|j| inst_cfg.demand_units(j.size_gb))
        .collect();
    solve_ret_with_demands(graph, jobs, &demands, inst_cfg, cfg)
}

/// [`solve_ret`] with explicit normalized demands — used by the periodic
/// controller to complete the *remaining* demand of in-flight jobs.
pub fn solve_ret_with_demands(
    graph: &Graph,
    jobs: &[Job],
    demands: &[f64],
    inst_cfg: &InstanceConfig,
    cfg: &RetConfig,
) -> Result<Option<RetResult>, SolveError> {
    assert!(!jobs.is_empty(), "RET needs at least one job");
    assert_eq!(jobs.len(), demands.len());
    let _span = obs::span("ret");
    let mut pathset = PathSet::new(inst_cfg.paths_per_job);

    // Step 1: binary search for the smallest feasible b (fractional),
    // with speculative parallel probing in warm mode (see [`Prober`]).
    let mut prober = Prober::new(graph, jobs, demands, inst_cfg, cfg, &mut pathset)?;
    let Some(b_lp) = prober.search()? else {
        return Ok(None);
    };
    let mut stats = prober.finish();

    // Steps 2–5: solve with Quick-Finish, discretize with LPDAR, grow b by
    // delta until the integral schedule completes everything. The solves
    // chain through one envelope session in *both* modes (see
    // [`GrowthSession`]); only an extension past b_max — possible on the
    // final step — exceeds the envelope and drops to a one-off cold build,
    // again identically in both modes.
    let env = extended_instance(
        graph,
        jobs,
        demands,
        cfg.b_max,
        cfg.mode,
        inst_cfg,
        &mut pathset,
    );
    let mut growth = GrowthSession::new(env, &cfg.lp)?;
    let mut b = b_lp;
    for _ in 0..cfg.max_delta_steps {
        let _step_span = obs::span("ret_growth_step");
        obs::counter_add("ret.growth_rounds", 1);
        let inst = extended_instance(graph, jobs, demands, b, cfg.mode, inst_cfg, &mut pathset);
        let (status, x) = if b <= cfg.b_max {
            growth.solve_step(&inst, jobs, cfg.mode, b, &mut stats)?
        } else {
            let p = build_subret(&inst);
            let sol = solve_with(&p, &cfg.lp)?;
            stats.merge(&sol.stats);
            let x = (sol.status == Status::Optimal).then(|| sol.x[..inst.vars.len()].to_vec());
            (sol.status, x)
        };
        if status == Status::Optimal {
            // lint: allow(lib-unwrap, reason = "invariant: an Optimal status always carries primal values")
            let x = x.expect("invariant: optimal carries values");
            let lp_sched = Schedule::from_values(&inst, x);
            let lpd = crate::lpdar::truncate(&inst, &lp_sched);
            let adj = lpdar_capped(&inst, &lp_sched, cfg.order);
            let all_done = (0..inst.num_jobs()).all(|i| adj.completes(&inst, i, COMPLETION_TOL));
            if all_done {
                return Ok(Some(RetResult {
                    b_lp,
                    b_final: b,
                    lp: lp_sched,
                    lpd,
                    lpdar: adj,
                    instance: inst,
                    stats,
                }));
            }
        }
        b += cfg.delta;
        if b > cfg.b_max + cfg.delta {
            break;
        }
    }
    Ok(None)
}

/// Active windows at trial extension `b` on the column-generation master's
/// (envelope) grid; `None` when some job's window is empty — the probe then
/// answers `false` without a solve, mirroring the monolithic path's
/// `has_unschedulable_job` check. The grid is uniform, so these are the
/// same slice indices an instance built directly at `b` would produce.
fn cg_windows_at(
    master: &CgMaster,
    jobs: &[Job],
    mode: RetMode,
    b: f64,
) -> Option<Vec<Range<usize>>> {
    let mut windows = Vec::with_capacity(jobs.len());
    for job in jobs {
        let ext = mode.apply(job, b);
        let w = master.grid().window_slices(ext.start, ext.end);
        if w.is_empty() {
            return None;
        }
        windows.push(w);
    }
    Some(windows)
}

/// One column-generation feasibility probe at extension `b`: tighten the
/// master's active windows, switch to the probe form, and run the
/// price–resolve loop. **Re-pricing after the bound change matters** — a
/// path that was worthless under wide windows can become the completing
/// path under tight ones, and a restricted master that skipped pricing
/// here could wrongly answer "infeasible".
fn cg_probe(
    master: &mut CgMaster,
    pricer: &mut dyn Pricer,
    jobs: &[Job],
    mode: RetMode,
    b: f64,
) -> Result<bool, SolveError> {
    obs::counter_add("ret.probes", 1);
    let _span = obs::span("ret_probe");
    let Some(windows) = cg_windows_at(master, jobs, mode, b) else {
        return Ok(false);
    };
    master.set_active_windows(&windows);
    master.set_probe();
    // Early-stop at the feasibility threshold: the restricted optimum
    // only underestimates the universe optimum, so reaching `Z >= 1`
    // already answers the probe — pricing to optimality is needed only
    // to certify infeasibility.
    let sol = price_resolve_until(master, pricer, |s| s.objective >= 1.0 - RET_PROBE_TOL)?;
    Ok(sol.status == Status::Optimal && sol.objective >= 1.0 - RET_PROBE_TOL)
}

/// Solves the RET problem (Algorithm 2) by delayed column generation.
///
/// One restricted master, built at the `b_max` envelope and seeded with
/// shortest paths, answers **every** bisection probe and δ-growth step:
/// per trial `b` the active windows tighten or reopen, the form switches
/// (probe / Quick-Finish), and the price–resolve loop re-prices — columns
/// accumulate monotonically across the whole search and the simplex basis
/// chains warm throughout. Matches [`solve_ret`]'s trajectory semantics
/// with one documented difference: growth is capped at the `b_max`
/// envelope (the pool's windows cannot extend past it), where the
/// monolithic path may take one final cold step beyond `b_max`. Returns
/// the result together with the column-generation work counters, or
/// `Ok(None)` when no extension within `b_max` completes all jobs.
pub fn solve_ret_colgen(
    graph: &Graph,
    jobs: &[Job],
    inst_cfg: &InstanceConfig,
    cfg: &RetConfig,
    cg: &ColGenConfig,
) -> Result<Option<(RetResult, CgStats)>, SolveError> {
    assert!(!jobs.is_empty(), "RET needs at least one job");
    let _span = obs::span("ret");
    let demands: Vec<f64> = jobs
        .iter()
        .map(|j| inst_cfg.demand_units(j.size_gb))
        .collect();

    let env_jobs: Vec<Job> = jobs.iter().map(|j| cfg.mode.apply(j, cfg.b_max)).collect();
    let mut master = CgMaster::build(graph, &env_jobs, demands, inst_cfg, cg)?;
    let mut pricer = cg.pricer.build(inst_cfg.paths_per_job);

    // Step 1: serial binary search for the smallest feasible b. (The
    // monolithic path speculates probes in parallel on session clones; the
    // incremental master is a single evolving session, so probing stays
    // serial — and therefore trivially byte-reproducible at any
    // WS_THREADS.)
    let b_lp = if cg_probe(&mut master, pricer.as_mut(), jobs, cfg.mode, 0.0)? {
        0.0
    } else if !cg_probe(&mut master, pricer.as_mut(), jobs, cfg.mode, cfg.b_max)? {
        return Ok(None);
    } else {
        let (mut lo, mut hi) = (0.0, cfg.b_max);
        while hi - lo > cfg.bsearch_tol {
            let mid = 0.5 * (lo + hi);
            if cg_probe(&mut master, pricer.as_mut(), jobs, cfg.mode, mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };

    // Steps 2–5: Quick-Finish + LPDAR, growing b by delta until the
    // integral schedule completes every job.
    let mut b = b_lp;
    for _ in 0..cfg.max_delta_steps {
        let _step_span = obs::span("ret_growth_step");
        obs::counter_add("ret.growth_rounds", 1);
        if let Some(windows) = cg_windows_at(&master, jobs, cfg.mode, b) {
            master.set_active_windows(&windows);
            master.set_quick_finish();
            let sol = price_resolve(&mut master, pricer.as_mut())?;
            if sol.status == Status::Optimal {
                let ext: Vec<Job> = jobs.iter().map(|j| cfg.mode.apply(j, b)).collect();
                let inst = master.materialize_for(&ext);
                let lp_sched = Schedule::from_values(&inst, master.values_on(&inst, &sol.x));
                let lpd = crate::lpdar::truncate(&inst, &lp_sched);
                let adj = lpdar_capped(&inst, &lp_sched, cfg.order);
                let all_done =
                    (0..inst.num_jobs()).all(|i| adj.completes(&inst, i, COMPLETION_TOL));
                if all_done {
                    return Ok(Some((
                        RetResult {
                            b_lp,
                            b_final: b,
                            lp: lp_sched,
                            lpd,
                            lpdar: adj,
                            instance: inst,
                            stats: master.session_stats(),
                        },
                        master.stats(),
                    )));
                }
            }
        }
        b += cfg.delta;
        if b > cfg.b_max {
            break;
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesched_net::abilene14;
    use wavesched_workload::{JobId, WorkloadConfig, WorkloadGenerator};

    fn overloaded_jobs(n: usize, seed: u64) -> (Graph, Vec<Job>) {
        let (g, _) = abilene14(2);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed,
            size_gb: (50.0, 100.0),
            window: (4.0, 8.0), // short windows force overload
            ..Default::default()
        })
        .generate(&g);
        (g, jobs)
    }

    #[test]
    fn ret_completes_all_jobs() {
        let (g, jobs) = overloaded_jobs(10, 2);
        let cfg = InstanceConfig::paper(2);
        let r = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
            .unwrap()
            .expect("RET should find an extension");
        assert_eq!(r.lpdar_fraction_finished(), 1.0);
        assert_eq!(r.lp_fraction_finished(), 1.0);
        assert!(r.b_final >= r.b_lp);
        assert!(r.lpdar.is_integral(1e-9));
        assert!(r.lpdar.max_capacity_violation(&r.instance) < 1e-9);
    }

    #[test]
    fn lpd_finishes_fewer_than_lpdar() {
        let (g, jobs) = overloaded_jobs(12, 7);
        let cfg = InstanceConfig::paper(2);
        let r = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        assert!(
            r.lpd_fraction_finished() <= r.lpdar_fraction_finished(),
            "LPD {} > LPDAR {}",
            r.lpd_fraction_finished(),
            r.lpdar_fraction_finished()
        );
    }

    #[test]
    fn underloaded_needs_no_extension() {
        let (g, _) = abilene14(8);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 3,
            seed: 1,
            size_gb: (1.0, 5.0),
            window: (16.0, 24.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(8);
        let r = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(r.b_lp, 0.0);
        assert_eq!(r.lpdar_fraction_finished(), 1.0);
    }

    #[test]
    fn quick_finish_packs_early() {
        // With plenty of slack, the QF objective should finish jobs well
        // before the extended deadline.
        let (g, nodes) = abilene14(4);
        let job = Job::new(JobId(0), 0.0, nodes[0], nodes[4], 75.0, 0.0, 20.0);
        let cfg = InstanceConfig::paper(4);
        let r = solve_ret(&g, &[job], &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        let t = r.lpdar_avg_end_time().unwrap();
        assert!(t <= 3.0, "QF should finish early, got {t}");
    }

    #[test]
    fn stretch_window_mode_completes() {
        let (g, jobs) = overloaded_jobs(8, 4);
        let cfg = InstanceConfig::paper(2);
        let ret_cfg = RetConfig {
            mode: RetMode::StretchWindow,
            ..RetConfig::default()
        };
        let r = solve_ret(&g, &jobs, &cfg, &ret_cfg)
            .unwrap()
            .expect("stretch mode feasible");
        assert_eq!(r.lpdar_fraction_finished(), 1.0);
        // Start times are preserved by the stretch.
        for (orig, ext) in jobs.iter().zip(&r.instance.jobs) {
            assert_eq!(orig.start, ext.start);
            assert!(ext.end >= orig.end - 1e-12);
        }
    }

    #[test]
    fn impossible_job_returns_none() {
        // Disconnected destination: no extension helps.
        let mut g = Graph::new();
        let ns = g.add_nodes(3);
        g.add_link_pair(ns[0], ns[1], 2);
        // ns[2] is isolated.
        let job = Job::new(JobId(0), 0.0, ns[0], ns[2], 10.0, 0.0, 4.0);
        let cfg = InstanceConfig::paper(2);
        let r = solve_ret(&g, &[job], &cfg, &RetConfig::default()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn warm_probes_match_cold_bitwise() {
        // Same b̂, same final b, and the exact same schedules — the session
        // only changes how fast probes are answered, never the answers.
        for seed in [2, 4, 7] {
            let (g, jobs) = overloaded_jobs(10, seed);
            let cfg = InstanceConfig::paper(2);
            let cold_cfg = RetConfig {
                warm_start: false,
                ..RetConfig::default()
            };
            let cold = solve_ret(&g, &jobs, &cfg, &cold_cfg)
                .unwrap()
                .expect("cold feasible");
            let warm = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
                .unwrap()
                .expect("warm feasible");
            assert_eq!(cold.b_lp.to_bits(), warm.b_lp.to_bits(), "seed {seed}");
            assert_eq!(
                cold.b_final.to_bits(),
                warm.b_final.to_bits(),
                "seed {seed}"
            );
            assert_eq!(cold.lp, warm.lp, "seed {seed}");
            assert_eq!(cold.lpd, warm.lpd, "seed {seed}");
            assert_eq!(cold.lpdar, warm.lpdar, "seed {seed}");
            assert_eq!(cold.lp_solves(), warm.lp_solves(), "seed {seed}");
            // Cold mode still chains the δ-growth session (shared by both
            // modes); the warm mode adds the probe session on top.
            assert!(
                warm.stats.warm_starts_accepted >= cold.stats.warm_starts_accepted,
                "seed {seed}"
            );
            assert!(
                warm.stats.iterations <= cold.stats.iterations,
                "seed {seed}: warm {} > cold {}",
                warm.stats.iterations,
                cold.stats.iterations
            );
        }
    }

    #[test]
    fn warm_probes_cut_iterations_on_fig4_workload() {
        // The Fig. 4 RET workload (scaled to test size): warm-started probes
        // must save at least 30% of the total simplex iterations.
        let (g, _) = abilene14(2);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 15,
            seed: 3000,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(2);
        let base = RetConfig {
            bsearch_tol: 0.05,
            b_max: 10.0,
            max_delta_steps: 120,
            ..RetConfig::default()
        };
        let cold_cfg = RetConfig {
            warm_start: false,
            ..base.clone()
        };
        let cold = solve_ret(&g, &jobs, &cfg, &cold_cfg)
            .unwrap()
            .expect("cold feasible");
        let warm = solve_ret(&g, &jobs, &cfg, &base)
            .unwrap()
            .expect("warm feasible");
        assert_eq!(cold.b_lp.to_bits(), warm.b_lp.to_bits());
        assert_eq!(cold.lpdar, warm.lpdar);
        assert!(
            (warm.stats.iterations as f64) <= 0.7 * cold.stats.iterations as f64,
            "warm {} vs cold {} iterations: less than 30% saved",
            warm.stats.iterations,
            cold.stats.iterations
        );
    }

    /// Fig. 4-shaped overload: heavy transfers in short windows, so the
    /// fractional SUB-RET is infeasible at `b = 0` and the bisection
    /// actually runs (the lighter `overloaded_jobs` workloads are already
    /// LP-feasible unextended).
    fn bisecting_jobs(n: usize, seed: u64) -> (Graph, Vec<Job>) {
        let (g, _) = abilene14(2);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&g);
        (g, jobs)
    }

    /// The RET knobs the Fig. 4 bench uses for that workload shape.
    fn bisecting_cfg() -> RetConfig {
        RetConfig {
            bsearch_tol: 0.05,
            b_max: 10.0,
            max_delta_steps: 120,
            ..RetConfig::default()
        }
    }

    #[test]
    fn speculative_probes_match_serial_bitwise() {
        // Probe answers and work counters are pure functions of b (clones
        // of one anchored template), and only realized probes are merged —
        // so EVERY field of the result, including the solver-work stats,
        // must be bit-identical at any pool width.
        for seed in [3000, 3001] {
            let (g, jobs) = bisecting_jobs(10, seed);
            let cfg = InstanceConfig::paper(2);
            let run = |threads: usize| {
                let ret_cfg = RetConfig {
                    threads,
                    ..bisecting_cfg()
                };
                solve_ret(&g, &jobs, &cfg, &ret_cfg)
                    .unwrap()
                    .expect("feasible")
            };
            let serial = run(1);
            assert!(serial.b_lp > 0.0, "seed {seed}: workload must bisect");
            for threads in [2, 4, 8] {
                let spec = run(threads);
                assert_eq!(
                    serial.b_lp.to_bits(),
                    spec.b_lp.to_bits(),
                    "seed {seed} threads {threads}: b_lp"
                );
                assert_eq!(
                    serial.b_final.to_bits(),
                    spec.b_final.to_bits(),
                    "seed {seed} threads {threads}: b_final"
                );
                assert_eq!(serial.lp, spec.lp, "seed {seed} threads {threads}");
                assert_eq!(serial.lpd, spec.lpd, "seed {seed} threads {threads}");
                assert_eq!(serial.lpdar, spec.lpdar, "seed {seed} threads {threads}");
                assert_eq!(
                    serial.stats, spec.stats,
                    "seed {seed} threads {threads}: realized work counters"
                );
            }
        }
    }

    #[test]
    fn speculation_counts_only_realized_probes() {
        // The ret.probes counter must report the serial trajectory's probe
        // count at every width; mis-speculated work lands in
        // ret.speculative_probes only.
        let (g, jobs) = bisecting_jobs(10, 3000);
        let cfg = InstanceConfig::paper(2);
        let probes_at = |threads: usize| {
            obs::set_enabled(true);
            obs::reset();
            let ret_cfg = RetConfig {
                threads,
                ..bisecting_cfg()
            };
            solve_ret(&g, &jobs, &cfg, &ret_cfg).unwrap().unwrap();
            let snap = obs::snapshot();
            obs::set_enabled(false);
            obs::reset();
            let get = |name: &str| {
                snap.iter().find_map(|m| match m {
                    obs::Metric::Counter { name: n, value } if n == name => Some(*value),
                    _ => None,
                })
            };
            (get("ret.probes"), get("ret.speculative_probes"))
        };
        let (serial_probes, serial_spec) = probes_at(1);
        assert!(serial_probes.is_some());
        assert_eq!(serial_spec, None, "serial path never speculates");
        let (par_probes, par_spec) = probes_at(4);
        assert_eq!(par_probes, serial_probes, "realized probe count");
        let spec = par_spec.expect("width 4 speculates");
        assert!(
            spec >= par_probes.unwrap() - 2,
            "speculation covers at least the realized midpoints: {spec}"
        );
    }

    #[test]
    fn b_lp_close_to_analytic() {
        // Single job, single 1-wavelength link, demand 8 units, window 4
        // slices => needs end extended to 8 slices: b ~ 1.0.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let job = Job::new(JobId(0), 0.0, ns[0], ns[1], 1200.0, 0.0, 4.0);
        let cfg = InstanceConfig::paper(1);
        let r = solve_ret(&g, &[job], &cfg, &RetConfig::default())
            .unwrap()
            .expect("feasible");
        assert!(
            (r.b_lp - 1.0).abs() <= 0.02,
            "expected b ~ 1.0, got {}",
            r.b_lp
        );
    }
}
