//! Stage 1: the maximum concurrent throughput LP (paper eqs. 1–5).
//!
//! Pretending bandwidth is infinitely divisible, find the largest `Z` such
//! that every job can move `Z · D_i` within its window under the link
//! capacities. `Z* < 1` means the network is overloaded; `Z* >= 1` means
//! every deadline can be met (and demands could even be scaled up by `Z*`).

use crate::arena::BuildArena;
use crate::builders::{add_assignment_cols, add_capacity_rows, job_volume_coeffs};
use crate::colgen::{CgMaster, Pricer};
use crate::instance::Instance;
use crate::schedule::Schedule;
use wavesched_lp::{
    solve_with_start, Basis, Objective, Problem, SimplexConfig, SolveError, SolveStats, Status,
};
use wavesched_obs as obs;

/// Result of the Stage-1 solve.
#[derive(Debug, Clone)]
pub struct Stage1Result {
    /// The maximum concurrent throughput `Z*`.
    pub z_star: f64,
    /// The fractional assignment achieving `Z*`.
    pub schedule: Schedule,
    /// The optimal simplex basis, for warm-starting related solves: Stage 2
    /// over the same instance (see
    /// [`stage2_basis_from_stage1`](crate::stage2::stage2_basis_from_stage1))
    /// or the next controller round's Stage 1. `None` for empty instances.
    pub basis: Option<Basis>,
    /// Solver work counters.
    pub stats: SolveStats,
}

/// Solves the Stage-1 MCF with default simplex settings.
pub fn solve_stage1(inst: &Instance) -> Result<Stage1Result, SolveError> {
    solve_stage1_with(inst, &SimplexConfig::default())
}

/// Solves the Stage-1 MCF with explicit simplex settings.
pub fn solve_stage1_with(inst: &Instance, cfg: &SimplexConfig) -> Result<Stage1Result, SolveError> {
    solve_stage1_with_start(inst, cfg, None)
}

/// Builds the Stage-1 LP without solving it. Exposed for the kernel
/// benchmarks, which probe the raw pivot loop on the paper-scale model.
#[doc(hidden)]
pub fn build_stage1_problem(inst: &Instance) -> Problem {
    build_stage1_problem_in(inst, &mut BuildArena::new())
}

/// [`build_stage1_problem`] writing its construction scratch into `arena`.
pub(crate) fn build_stage1_problem_in(inst: &Instance, arena: &mut BuildArena) -> Problem {
    let mut p = Problem::new(Objective::Maximize);
    let (cols, coeffs) = arena.scratch();
    add_assignment_cols(&mut p, inst, cols);
    let z = p.add_col(0.0, f64::INFINITY, 1.0); // maximize Z

    // Eq. 2: sum_{p,j} x·LEN = Z · D_i for every job.
    for i in 0..inst.num_jobs() {
        job_volume_coeffs(inst, cols, i, coeffs);
        coeffs.push((z, -inst.demands[i]));
        p.add_row(0.0, 0.0, coeffs);
    }
    add_capacity_rows(&mut p, inst, cols, coeffs);
    p
}

/// Solves the Stage-1 MCF, warm-starting from `start` when given.
///
/// The basis is typically the [`Stage1Result::basis`] of a previous,
/// structurally identical solve (e.g. the preceding controller period). A
/// basis of the wrong shape degrades to a cold solve — the result is the
/// same either way, only [`SolveStats`] differ.
pub fn solve_stage1_with_start(
    inst: &Instance,
    cfg: &SimplexConfig,
    start: Option<&Basis>,
) -> Result<Stage1Result, SolveError> {
    solve_stage1_in(inst, cfg, start, &mut BuildArena::new())
}

/// [`solve_stage1_with_start`] building the LP through a caller-held
/// [`BuildArena`], so repeated solves (one per controller period) reuse the
/// construction buffers instead of reallocating them.
pub(crate) fn solve_stage1_in(
    inst: &Instance,
    cfg: &SimplexConfig,
    start: Option<&Basis>,
    arena: &mut BuildArena,
) -> Result<Stage1Result, SolveError> {
    if inst.num_jobs() == 0 {
        return Ok(Stage1Result {
            z_star: f64::INFINITY,
            schedule: Schedule::zero(inst),
            basis: None,
            stats: SolveStats::default(),
        });
    }

    let build_span = obs::span("build");
    let p = build_stage1_problem_in(inst, arena);
    drop(build_span);

    let sol = solve_with_start(&p, cfg, start)?;
    match sol.status {
        Status::Optimal => Ok(Stage1Result {
            z_star: sol.objective,
            schedule: Schedule::from_values(inst, sol.x[..inst.vars.len()].to_vec()),
            basis: sol.basis,
            stats: sol.stats,
        }),
        // Z = 0, x = 0 is always feasible, so anything else is a solver
        // breakdown worth surfacing.
        other => Err(SolveError::Numerical(format!(
            "stage 1 terminated with status {other}"
        ))),
    }
}

/// Solves Stage 1 by delayed column generation: switches `master` to
/// Stage-1 form and runs the price–resolve loop until the pricer finds no
/// improving path (or the round cap is hit). Returns `Z*`, optimal over
/// the pricer's path universe — for the exhaustive pricer this matches
/// [`solve_stage1`] over the same Yen paths to tolerance.
pub fn solve_stage1_colgen(
    master: &mut CgMaster,
    pricer: &mut dyn Pricer,
) -> Result<f64, SolveError> {
    if master.num_jobs() == 0 {
        return Ok(f64::INFINITY);
    }
    let _span = obs::span("stage1");
    master.set_stage1();
    let mut rounds = 0usize;
    loop {
        let sol = master.solve()?;
        if sol.status != Status::Optimal {
            // Z = 0, x = 0 is always feasible, as in the monolithic build.
            return Err(SolveError::Numerical(format!(
                "stage 1 (colgen) terminated with status {}",
                sol.status
            )));
        }
        if master.price_and_augment(&sol, pricer, rounds) == 0 {
            return Ok(sol.objective);
        }
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use wavesched_net::{abilene14, Graph, PathSet};
    use wavesched_workload::{Job, JobId, WorkloadConfig, WorkloadGenerator};

    fn build(graph: &Graph, jobs: &[Job], w: u32) -> Instance {
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(graph, jobs, &cfg, &mut ps)
    }

    #[test]
    fn single_job_exact_fit() {
        // Two nodes, one link pair with 1 wavelength; demand exactly fills
        // the window => Z* = 1.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        // 4 slices, demand 4 units: 4 slices * 1 wavelength = 4.
        // With paper(1): 20 Gbps per lambda, 60 s slices => 150 GB/unit.
        let job = Job::new(JobId(0), 0.0, ns[0], ns[1], 600.0, 0.0, 4.0);
        let inst = build(&g, &[job], 1);
        assert!((inst.demands[0] - 4.0).abs() < 1e-9);
        let r = solve_stage1(&inst).unwrap();
        assert!((r.z_star - 1.0).abs() < 1e-6, "Z* = {}", r.z_star);
        // The schedule must actually move Z* * D.
        assert!((r.schedule.transferred(&inst, 0) - 4.0).abs() < 1e-6);
        assert_eq!(r.schedule.max_capacity_violation(&inst), 0.0);
    }

    #[test]
    fn overload_gives_z_below_one() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        // Demand 8 units in a 4-slice window on a 1-wavelength link: Z*=0.5.
        let job = Job::new(JobId(0), 0.0, ns[0], ns[1], 1200.0, 0.0, 4.0);
        let inst = build(&g, &[job], 1);
        let r = solve_stage1(&inst).unwrap();
        assert!((r.z_star - 0.5).abs() < 1e-6, "Z* = {}", r.z_star);
    }

    #[test]
    fn fairness_is_common_factor() {
        // Two jobs share one link; capacity 2, window 2 slices each.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 2);
        // paper(2): 10 Gbps per lambda, 75 GB per unit.
        // Job sizes 150 GB (2 units) and 300 GB (4 units); capacity over
        // 2 slices is 4 wavelength-slices => Z* = 4 / 6.
        let j1 = Job::new(JobId(0), 0.0, ns[0], ns[1], 150.0, 0.0, 2.0);
        let j2 = Job::new(JobId(1), 0.0, ns[0], ns[1], 300.0, 0.0, 2.0);
        let inst = build(&g, &[j1, j2], 2);
        let r = solve_stage1(&inst).unwrap();
        assert!((r.z_star - 4.0 / 6.0).abs() < 1e-6, "Z* = {}", r.z_star);
        // Both jobs get exactly Z* of their demand.
        for i in 0..2 {
            assert!((r.schedule.throughput(&inst, i) - r.z_star).abs() < 1e-6);
        }
    }

    #[test]
    fn multipath_improves_throughput() {
        // Diamond: 0 -> {1,2} -> 3, each link 1 wavelength. A single job
        // 0->3 can use both 2-hop paths => Z* doubles vs single path.
        let mut g = Graph::new();
        let ns = g.add_nodes(4);
        g.add_link_pair(ns[0], ns[1], 1);
        g.add_link_pair(ns[1], ns[3], 1);
        g.add_link_pair(ns[0], ns[2], 1);
        g.add_link_pair(ns[2], ns[3], 1);
        // Demand 4 units over 2 slices. One path: 2 units max (Z = 0.5);
        // two paths: 4 units (Z = 1).
        let job = Job::new(JobId(0), 0.0, ns[0], ns[3], 600.0, 0.0, 2.0);
        let cfg = InstanceConfig {
            paths_per_job: 4,
            ..InstanceConfig::paper(1)
        };
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &[job], &cfg, &mut ps);
        assert!((inst.demands[0] - 4.0).abs() < 1e-9);
        let r = solve_stage1(&inst).unwrap();
        assert!((r.z_star - 1.0).abs() < 1e-6, "Z* = {}", r.z_star);

        let cfg1 = InstanceConfig {
            paths_per_job: 1,
            ..cfg
        };
        let mut ps1 = PathSet::new(1);
        let inst1 = Instance::build(&g, &[inst.jobs[0].clone()], &cfg1, &mut ps1);
        let r1 = solve_stage1(&inst1).unwrap();
        assert!((r1.z_star - 0.5).abs() < 1e-6, "Z* = {}", r1.z_star);
    }

    #[test]
    fn abilene_random_workload_sane() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 12,
            seed: 3,
            ..Default::default()
        })
        .generate(&g);
        let inst = build(&g, &jobs, 4);
        let r = solve_stage1(&inst).unwrap();
        assert!(r.z_star > 0.0);
        assert!(r.schedule.max_capacity_violation(&inst) < 1e-6);
        // Every job moved exactly Z* of its demand.
        for i in 0..inst.num_jobs() {
            assert!(
                (r.schedule.throughput(&inst, i) - r.z_star).abs() < 1e-5,
                "job {i}: {} vs Z*={}",
                r.schedule.throughput(&inst, i),
                r.z_star
            );
        }
    }

    #[test]
    fn empty_instance() {
        let (g, _) = abilene14(4);
        let inst = build(&g, &[], 4);
        let r = solve_stage1(&inst).unwrap();
        assert!(r.z_star.is_infinite());
    }

    #[test]
    fn unschedulable_job_forces_zero() {
        let (g, nodes) = abilene14(4);
        // Window too short for a full slice: no variables => Z* = 0.
        let job = Job::new(JobId(0), 0.0, nodes[0], nodes[1], 10.0, 0.2, 0.8);
        let inst = build(&g, &[job], 4);
        let r = solve_stage1(&inst).unwrap();
        assert!(r.z_star.abs() < 1e-9);
    }
}
