//! Delayed column generation over paths: the restricted master problem
//! and its pricers.
//!
//! The paper's formulations are time-expanded path-flow LPs whose column
//! count is (jobs × paths × slices); materializing every Yen path column up
//! front is what caps the solvable scale. Following the column-generation
//! structure documented by Ahani–Wiatr–Yuan for the same model family
//! ("Routing and Scheduling of Network Flows with Deadlines and Discrete
//! Capacity Allocation"), this module keeps only an *active* column pool:
//!
//! 1. seed the pool with each job's hop-shortest path,
//! 2. solve the restricted master over the pool ([`CgMaster::solve`]),
//! 3. price new paths against the optimal duals
//!    ([`CgMaster::price_and_augment`]): a path column for `(job i,
//!    slice j)` improves the master iff its reduced cost is positive,
//!    i.e. iff its dual load `Σ_{e∈p} μ_{e,j}` is below the budget
//!    `c_ij − λ_i·LEN(j) − tol`,
//! 4. repeat until no pricer proposal survives verification.
//!
//! When the loop terminates, the restricted optimum is optimal for the
//! *full* LP over the pricer's path universe: the master duals extended
//! with zeros on the unmaterialized capacity rows are dual-feasible within
//! tolerance for every priced-out column.
//!
//! Two pricers implement [`Pricer`]:
//!
//! * [`ExhaustivePricer`] prices over the Yen k-shortest universe: each
//!   round it proposes the best improving out-of-pool Yen path per job, so
//!   at convergence the whole Yen set is priced out and column generation
//!   with this pricer must match the monolithic [`Instance`]-based solve
//!   to tolerance — the differential oracle.
//! * [`ReducedCostPricer`] runs Dijkstra on the clamped capacity duals
//!   (`max(μ_{e,j}, 0)` per link) and can propose negative-reduced-cost
//!   paths *outside* the Yen set. Clamping only under-estimates the dual
//!   load, so every proposal is re-verified against the exact reduced cost
//!   before columns are added.
//!
//! Everything here is serial and deterministically ordered (`BTreeMap`
//! duals, sorted row keys, the tie-broken Dijkstra of `wavesched-net`), so
//! runs are byte-reproducible at any `WS_THREADS`.

use crate::instance::{Instance, InstanceConfig};
use crate::timegrid::TimeGrid;
use std::collections::BTreeMap;
use std::ops::Range;
use wavesched_lp::{
    Col, NewColumn, NewRow, Objective, Problem, Row, SimplexConfig, Solution, SolveError,
    SolveStats, SolverSession, Status,
};
use wavesched_net::{dijkstra, EdgeId, Graph, Path, PathSet};
use wavesched_obs as obs;
use wavesched_workload::Job;

/// Which pricing oracle generates candidate columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricerChoice {
    /// Reduced-cost Dijkstra over clamped capacity duals (the default):
    /// prices the universe of *all* simple paths, proposing improving
    /// paths the Yen set may not contain.
    #[default]
    ReducedCost,
    /// Propose every Yen k-shortest path — full materialization as a
    /// pricer, the differential oracle for the reduced-cost path.
    Exhaustive,
}

impl PricerChoice {
    /// Instantiates the pricer. `paths_per_job` is the Yen `k` used by the
    /// exhaustive oracle (ignored by the reduced-cost pricer).
    pub fn build(&self, paths_per_job: usize) -> Box<dyn Pricer> {
        match self {
            PricerChoice::ReducedCost => Box::new(ReducedCostPricer::new()),
            PricerChoice::Exhaustive => Box::new(ExhaustivePricer::new(paths_per_job)),
        }
    }
}

/// Column-generation knobs.
#[derive(Debug, Clone)]
pub struct ColGenConfig {
    /// Pricing oracle.
    pub pricer: PricerChoice,
    /// Hard cap on price–resolve rounds per master form (stage 1, stage 2,
    /// each RET probe, each growth step). Hitting the cap returns the best
    /// restricted optimum found so far.
    pub max_rounds: usize,
    /// Reduced-cost tolerance: a column must beat the duals by more than
    /// this to enter the pool.
    pub tolerance: f64,
    /// Simplex settings for the restricted master.
    pub lp: SimplexConfig,
}

impl Default for ColGenConfig {
    fn default() -> Self {
        ColGenConfig {
            pricer: PricerChoice::default(),
            max_rounds: 50,
            tolerance: 1e-7,
            lp: SimplexConfig::default(),
        }
    }
}

/// Column-generation work counters (also mirrored into the `cg.*` obs
/// counters: `cg.rounds`, `cg.columns_added`, `cg.pricer_calls`,
/// `cg.pricing_ns`, `cg.master_dual_iterations`,
/// `cg.master_lu_reuse_hits`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CgStats {
    /// Price–resolve rounds run (one per [`CgMaster::price_and_augment`]).
    pub rounds: u64,
    /// Master columns added after the seed.
    pub columns_added: u64,
    /// Pricer invocations.
    pub pricer_calls: u64,
    /// Wall-clock nanoseconds spent inside pricers (reporting only).
    pub pricing_ns: u64,
    /// Dual simplex pivots spent in master re-solves (bound/RHS-only
    /// re-aims that skipped the primal phase-1 repair).
    pub master_dual_iterations: u64,
    /// Master re-solves that entered through the factorization-reuse path
    /// (no `Lu::factor` at solve entry; column splices and capacity-row
    /// growth kept the carried factors valid).
    pub master_lu_reuse_hits: u64,
}

/// One pool column: `(job, path index within the job's pool, slice)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCol {
    /// Job index.
    pub job: u32,
    /// Index into [`ColumnPool::paths_of`] for the job.
    pub path: u32,
    /// Time slice.
    pub slice: u32,
}

/// The restricted master's active `(job, path, slice)` columns.
///
/// Paths are append-only per job and columns are append-only globally, so
/// variable indices are **stable across rounds**: a basis extracted after
/// round `r` still addresses the same columns in round `r + 1` (with new
/// columns appended at the end), which is what keeps Stage-2 / RET /
/// controller warm starts working under column generation.
#[derive(Debug, Clone)]
pub struct ColumnPool {
    paths: Vec<Vec<Path>>,
    cols: Vec<PoolCol>,
}

impl ColumnPool {
    fn new(num_jobs: usize) -> Self {
        ColumnPool {
            paths: vec![Vec::new(); num_jobs],
            cols: Vec::new(),
        }
    }

    /// Number of jobs covered.
    pub fn num_jobs(&self) -> usize {
        self.paths.len()
    }

    /// The active paths of one job, in pool order.
    pub fn paths_of(&self, job: usize) -> &[Path] {
        &self.paths[job]
    }

    /// Total number of active paths across all jobs.
    pub fn num_paths(&self) -> usize {
        self.paths.iter().map(|p| p.len()).sum()
    }

    /// Total number of `(job, path, slice)` columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// The pool columns in master order.
    pub fn cols(&self) -> &[PoolCol] {
        &self.cols
    }

    /// True when `path` is already in `job`'s pool.
    pub fn contains(&self, job: usize, path: &Path) -> bool {
        self.paths[job].iter().any(|p| p == path)
    }
}

/// Everything a [`Pricer`] may consult when proposing columns.
pub struct PricingContext<'a> {
    /// The network.
    pub graph: &'a Graph,
    /// The jobs (RET callers pass the deadline-extended jobs).
    pub jobs: &'a [Job],
    /// The *active* slice window per job at the current trial deadline.
    pub windows: &'a [Range<usize>],
    /// Dual value of every materialized capacity row, keyed by
    /// `(edge index, slice)`. Rows not in the map have dual zero (their
    /// constraint is slack by construction).
    pub cap_duals: &'a BTreeMap<(u32, u32), f64>,
    /// `budgets[i][j - windows[i].start]`: a new path for job `i` usable
    /// in slice `j` improves the master iff its dual load
    /// `Σ_{e∈p} μ_{e,j}` is strictly below this (the reduced-cost
    /// tolerance is already subtracted).
    pub budgets: &'a [Vec<f64>],
    /// The current pool, for deduplication.
    pub pool: &'a ColumnPool,
}

/// A column-generation pricing oracle: proposes `(job, path)` candidates
/// whose columns may improve the restricted master. Proposals are
/// re-verified against exact reduced costs by the master, so a pricer may
/// over-propose, but must be deterministic: same context, same proposals,
/// same order. Both built-in pricers propose at most one path per job per
/// round — the best exact margin — which keeps the pool lean (textbook
/// column-generation discipline; entering every improving column floods
/// the restricted master back to the monolithic size).
pub trait Pricer {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Proposes candidate paths under the given duals.
    fn price(&mut self, ctx: &PricingContext<'_>) -> Vec<(usize, Path)>;
}

/// Yen-universe pricing: each round, scan every Yen k-shortest path not
/// yet in the pool and propose the one with the best exact reduced-cost
/// margin per job. At convergence no out-of-pool Yen path improves, so
/// column generation with this pricer reaches exactly the monolithic
/// [`Instance`]-based optimum — the differential oracle.
pub struct ExhaustivePricer {
    pathset: PathSet,
}

impl ExhaustivePricer {
    /// Creates the oracle with the Yen `k` (the instance's
    /// `paths_per_job`).
    pub fn new(paths_per_job: usize) -> Self {
        ExhaustivePricer {
            pathset: PathSet::new(paths_per_job),
        }
    }
}

/// Exact reduced-cost margin of `path` for `job`: the maximum over the
/// job's active slices of `budget − Σ_{e∈p} μ_{e,j}` under the raw
/// (unclamped) duals. Positive iff some slice's column passes the
/// master's entry verification.
fn exact_margin(ctx: &PricingContext<'_>, job: usize, path: &Path) -> f64 {
    let w = &ctx.windows[job];
    let mut best = f64::NEG_INFINITY;
    for j in w.clone() {
        let load: f64 = path
            .edges()
            .iter()
            .map(|e| ctx.cap_duals.get(&(e.0, j as u32)).copied().unwrap_or(0.0))
            .sum();
        let m = ctx.budgets[job][j - w.start] - load;
        if m > best {
            best = m;
        }
    }
    best
}

impl Pricer for ExhaustivePricer {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn price(&mut self, ctx: &PricingContext<'_>) -> Vec<(usize, Path)> {
        let mut out = Vec::new();
        for (i, job) in ctx.jobs.iter().enumerate() {
            if ctx.windows[i].is_empty() {
                continue;
            }
            // Best strictly-improving out-of-pool Yen path; ties keep the
            // first in Yen order (deterministic).
            let mut best: Option<(f64, &Path)> = None;
            let paths = self.pathset.paths(ctx.graph, job.src, job.dst);
            for p in paths {
                if ctx.pool.contains(i, p) {
                    continue;
                }
                let m = exact_margin(ctx, i, p);
                if m > 0.0 && best.as_ref().is_none_or(|(bm, _)| m > *bm) {
                    best = Some((m, p));
                }
            }
            if let Some((_, p)) = best {
                out.push((i, p.clone()));
            }
        }
        out
    }
}

/// Reduced-cost Dijkstra pricing: for every `(job, slice)` with a positive
/// budget, find the minimum-dual-load path under link weights
/// `max(μ_{e,slice}, 0)`; a path whose (under-estimated) load beats the
/// budget is a candidate, and the candidate with the best exact margin is
/// proposed for the job. Searches are cached per `(slice, src, dst)`
/// within one call; candidate order is slice-major with first-wins ties —
/// fully deterministic.
#[derive(Default)]
pub struct ReducedCostPricer {}

impl ReducedCostPricer {
    /// Creates the pricer.
    pub fn new() -> Self {
        ReducedCostPricer {}
    }
}

impl Pricer for ReducedCostPricer {
    fn name(&self) -> &'static str {
        "reduced-cost"
    }

    fn price(&mut self, ctx: &PricingContext<'_>) -> Vec<(usize, Path)> {
        let mut out = Vec::new();
        // (slice, src, dst) -> cheapest-dual-load path this round.
        let mut cache: BTreeMap<(u32, u32, u32), Option<(f64, Path)>> = BTreeMap::new();
        for (i, job) in ctx.jobs.iter().enumerate() {
            let w = ctx.windows[i].clone();
            // Candidate paths for this job (deduplicated by edge list);
            // the one with the best exact margin is proposed.
            let mut seen: std::collections::BTreeSet<Vec<u32>> = Default::default();
            let mut best: Option<(f64, Path)> = None;
            for j in w.clone() {
                let budget = ctx.budgets[i][j - w.start];
                // Dual loads are >= 0, so a non-positive budget can never
                // be beaten; skip the search.
                if budget <= 0.0 {
                    continue;
                }
                let key = (j as u32, job.src.0, job.dst.0);
                let entry = cache.entry(key).or_insert_with(|| {
                    dijkstra::shortest_path_weighted(
                        ctx.graph,
                        job.src,
                        job.dst,
                        |e| {
                            wavesched_lp::pos_or_zero(
                                ctx.cap_duals.get(&(e.0, j as u32)).copied().unwrap_or(0.0),
                            )
                        },
                        |_| true,
                        |_| true,
                    )
                });
                let Some((dist, path)) = entry else { continue };
                if *dist >= budget || ctx.pool.contains(i, path) {
                    continue;
                }
                let edges: Vec<u32> = path.edges().iter().map(|e| e.0).collect();
                if !seen.insert(edges) {
                    continue;
                }
                let m = exact_margin(ctx, i, path);
                if m > 0.0 && best.as_ref().is_none_or(|(bm, _)| m > *bm) {
                    best = Some((m, path.clone()));
                }
            }
            if let Some((_, p)) = best {
                out.push((i, p));
            }
        }
        out
    }
}

/// Which of the paper's formulations the master currently encodes. All
/// four share one variable space — the pool columns plus a single `Z`
/// column — and one row space (a row per job, then on-demand capacity
/// rows), so switching forms only rewrites costs and bounds and every
/// warm start transfers.
#[derive(Debug, Clone)]
enum MasterForm {
    /// Maximize `Z` s.t. per-job volume `= Z·D_i` (paper eqs. 1–5).
    Stage1,
    /// Maximize weighted throughput with fairness floor `Z >= floor`
    /// (eqs. 7–10 relaxed); `scale[i] = (w_i / D_i) / Σw`.
    Stage2 { scale: Vec<f64> },
    /// RET feasibility probe: maximize `Z ∈ [0,1]` s.t. volume `>= Z·D_i`;
    /// feasible at the trial deadline iff `Z* >= 1`.
    Probe,
    /// SUB-RET Quick-Finish: minimize `Σ (j+1)·x` (encoded as maximize
    /// the negation) s.t. volume `>= D_i` (`Z` pinned to 1).
    QuickFinish,
}

/// The restricted master problem of the column-generation loop.
///
/// Owns one incremental [`SolverSession`] for the whole loop — and, via
/// form switching, for the whole Stage-1 → Stage-2 pipeline or the whole
/// RET bisection + δ-growth — so the simplex basis is reused across every
/// resolve, augmentation, and bound change.
pub struct CgMaster {
    graph: Graph,
    jobs: Vec<Job>,
    demands: Vec<f64>,
    grid: TimeGrid,
    /// Envelope slice window per job (from the jobs the master was built
    /// with — RET callers build at the deadline envelope `b_max`).
    windows: Vec<Range<usize>>,
    /// Currently active window per job (`⊆` envelope); columns outside are
    /// fixed to zero.
    active: Vec<Range<usize>>,
    config: InstanceConfig,
    cg: ColGenConfig,
    session: SolverSession,
    z: Col,
    job_rows: Vec<Row>,
    cap_rows: BTreeMap<(u32, u32), Row>,
    pool: ColumnPool,
    /// LP column of each pool column, in pool order.
    lp_cols: Vec<Col>,
    form: MasterForm,
    stats: CgStats,
    /// Per-round pricing scratch (reduced-cost budgets per job), recycled
    /// across rounds so steady-state pricing stops allocating.
    budget_scratch: Vec<Vec<f64>>,
}

impl CgMaster {
    /// Builds the restricted master seeded with each job's hop-shortest
    /// path, in Stage-1 form. `demands` are normalized demand units (use
    /// [`InstanceConfig::demand_units`]); jobs with no route simply get an
    /// empty pool (their job row then forces `Z = 0`, exactly like the
    /// monolithic build).
    pub fn build(
        graph: &Graph,
        jobs: &[Job],
        demands: Vec<f64>,
        config: &InstanceConfig,
        cg: &ColGenConfig,
    ) -> Result<Self, SolveError> {
        assert_eq!(jobs.len(), demands.len());
        let horizon = jobs
            .iter()
            .map(|j| j.end)
            .fold(1.0_f64, f64::max)
            .ceil()
            .max(1.0) as usize;
        let grid = TimeGrid::uniform(horizon);
        let windows: Vec<Range<usize>> = jobs
            .iter()
            .map(|j| grid.window_slices(j.start, j.end))
            .collect();

        let mut pool = ColumnPool::new(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            if let Some(p) = dijkstra::shortest_path(graph, job.src, job.dst) {
                pool.paths[i].push(p);
            }
        }

        // Master LP: Z first (stable index 0), then the seed columns in
        // pool order, then a row per job, then the capacity rows the seed
        // columns cross, in sorted (edge, slice) order.
        let mut p = Problem::new(Objective::Maximize);
        let z = p.add_col(0.0, f64::INFINITY, 1.0);
        let mut lp_cols = Vec::new();
        for (i, paths) in pool.paths.iter().enumerate() {
            for (pi, _) in paths.iter().enumerate() {
                for slice in windows[i].clone() {
                    let col = p.add_col(0.0, f64::INFINITY, 0.0);
                    lp_cols.push(col);
                    pool.cols.push(PoolCol {
                        job: i as u32,
                        path: pi as u32,
                        slice: slice as u32,
                    });
                }
            }
        }
        let mut job_rows = Vec::with_capacity(jobs.len());
        for (i, _) in jobs.iter().enumerate() {
            let mut coeffs: Vec<(Col, f64)> = Vec::new();
            for (k, pc) in pool.cols.iter().enumerate() {
                if pc.job as usize == i {
                    coeffs.push((lp_cols[k], grid.len_of(pc.slice as usize)));
                }
            }
            coeffs.push((z, -demands[i]));
            job_rows.push(p.add_row(0.0, 0.0, &coeffs));
        }
        let mut crossings: BTreeMap<(u32, u32), Vec<(Col, f64)>> = BTreeMap::new();
        for (k, pc) in pool.cols.iter().enumerate() {
            for &e in pool.paths[pc.job as usize][pc.path as usize].edges() {
                crossings
                    .entry((e.0, pc.slice))
                    .or_default()
                    .push((lp_cols[k], 1.0));
            }
        }
        let mut cap_rows = BTreeMap::new();
        for (key, coeffs) in &crossings {
            let cap = graph.wavelengths(EdgeId(key.0)) as f64;
            cap_rows.insert(*key, p.add_row(f64::NEG_INFINITY, cap, coeffs));
        }

        let session = SolverSession::with_config(&p, &cg.lp)?;
        Ok(CgMaster {
            graph: graph.clone(),
            jobs: jobs.to_vec(),
            demands,
            grid,
            active: windows.clone(),
            windows,
            config: config.clone(),
            cg: cg.clone(),
            session,
            z,
            job_rows,
            cap_rows,
            pool,
            lp_cols,
            form: MasterForm::Stage1,
            stats: CgStats::default(),
            budget_scratch: Vec::new(),
        })
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The normalized demands the master was built with.
    pub fn demands(&self) -> &[f64] {
        &self.demands
    }

    /// The master's time grid.
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// The envelope slice windows the master was built with.
    pub fn windows(&self) -> &[Range<usize>] {
        &self.windows
    }

    /// The active column pool.
    pub fn pool(&self) -> &ColumnPool {
        &self.pool
    }

    /// Column-generation work counters so far.
    pub fn stats(&self) -> CgStats {
        self.stats
    }

    /// Aggregated simplex counters over every master solve.
    pub fn session_stats(&self) -> SolveStats {
        self.session.stats()
    }

    /// The column-generation configuration.
    pub fn cg_config(&self) -> &ColGenConfig {
        &self.cg
    }

    /// True when this master's price–resolve loop may run another round.
    pub fn may_round(&self, rounds_done: usize) -> bool {
        rounds_done < self.cg.max_rounds
    }

    /// Switches the master to Stage-1 form (maximize `Z`, volume `= Z·D`).
    pub fn set_stage1(&mut self) {
        self.install_form(MasterForm::Stage1);
    }

    /// Switches the master to Stage-2 form: fairness floor
    /// `Z >= (1-alpha)·Z*` and per-column costs
    /// `scale[i] · LEN(j)` with `scale[i] = (w_i/D_i)/Σw`.
    pub fn set_stage2(&mut self, floor: f64, scale: Vec<f64>) {
        assert_eq!(scale.len(), self.jobs.len());
        self.install_form(MasterForm::Stage2 { scale });
        self.session.set_col_bounds(self.z, floor, f64::INFINITY);
    }

    /// Switches the master to the RET feasibility-probe form.
    pub fn set_probe(&mut self) {
        self.install_form(MasterForm::Probe);
    }

    /// Switches the master to the SUB-RET Quick-Finish form.
    pub fn set_quick_finish(&mut self) {
        self.install_form(MasterForm::QuickFinish);
    }

    fn install_form(&mut self, form: MasterForm) {
        self.form = form;
        let (z_cost, z_lo, z_hi, row_hi) = match &self.form {
            MasterForm::Stage1 => (1.0, 0.0, f64::INFINITY, 0.0),
            MasterForm::Stage2 { .. } => (0.0, 0.0, f64::INFINITY, f64::INFINITY),
            MasterForm::Probe => (1.0, 0.0, 1.0, f64::INFINITY),
            MasterForm::QuickFinish => (0.0, 1.0, 1.0, f64::INFINITY),
        };
        self.session.set_cost(self.z, z_cost);
        self.session.set_col_bounds(self.z, z_lo, z_hi);
        for i in 0..self.job_rows.len() {
            self.session.set_row_bounds(self.job_rows[i], 0.0, row_hi);
        }
        for k in 0..self.pool.cols.len() {
            let pc = self.pool.cols[k];
            let c = self.cost_of(pc.job as usize, pc.slice as usize);
            self.session.set_cost(self.lp_cols[k], c);
        }
    }

    /// The current form's objective coefficient of a `(job, slice)`
    /// column.
    fn cost_of(&self, job: usize, slice: usize) -> f64 {
        match &self.form {
            MasterForm::Stage1 | MasterForm::Probe => 0.0,
            MasterForm::Stage2 { scale } => scale[job] * self.grid.len_of(slice),
            // Minimize Σ (slice+1)·x as a maximization.
            MasterForm::QuickFinish => -((slice + 1) as f64),
        }
    }

    /// Restricts each job to `windows[i]` (clipped to the envelope):
    /// columns outside are fixed to zero, columns inside reopened. RET
    /// drives this per bisection probe and per δ-growth step, re-pricing
    /// after every change.
    pub fn set_active_windows(&mut self, windows: &[Range<usize>]) {
        assert_eq!(windows.len(), self.jobs.len());
        for (i, w) in windows.iter().enumerate() {
            let env = &self.windows[i];
            self.active[i] = w.start.max(env.start)..w.end.min(env.end);
        }
        self.apply_active_bounds();
    }

    /// Reopens every job's full envelope window.
    pub fn reset_active_windows(&mut self) {
        for i in 0..self.windows.len() {
            self.active[i] = self.windows[i].clone();
        }
        self.apply_active_bounds();
    }

    /// Re-aims every pool column's upper bound at the current active
    /// windows: open inside, fixed to zero outside.
    fn apply_active_bounds(&mut self) {
        for k in 0..self.pool.cols.len() {
            let pc = self.pool.cols[k];
            let hi = if self.active[pc.job as usize].contains(&(pc.slice as usize)) {
                f64::INFINITY
            } else {
                0.0
            };
            self.session.set_col_bounds(self.lp_cols[k], 0.0, hi);
        }
    }

    /// Solves the restricted master (warm from the previous optimum; the
    /// session takes the dual simplex path automatically when every edit
    /// since the last optimum was a bound/RHS re-aim).
    pub fn solve(&mut self) -> Result<Solution, SolveError> {
        let sol = self.session.solve()?;
        self.stats.master_dual_iterations += sol.stats.dual_iterations;
        obs::counter_add("cg.master_dual_iterations", sol.stats.dual_iterations);
        self.stats.master_lu_reuse_hits += sol.stats.lu_reuse_hits;
        obs::counter_add("cg.master_lu_reuse_hits", sol.stats.lu_reuse_hits);
        Ok(sol)
    }

    /// One pricing round: extracts the duals of `sol`, calls the pricer,
    /// verifies each proposal against exact reduced costs, and adds the
    /// surviving paths' columns (and any newly crossed capacity rows) to
    /// the master. Returns the number of columns added — zero means the
    /// restricted optimum is optimal over the pricer's universe and the
    /// loop is done. Returns zero without pricing once `rounds_done`
    /// reaches the configured round cap.
    pub fn price_and_augment(
        &mut self,
        sol: &Solution,
        pricer: &mut dyn Pricer,
        rounds_done: usize,
    ) -> usize {
        debug_assert_eq!(sol.status, Status::Optimal, "pricing needs optimal duals");
        if !self.may_round(rounds_done) {
            return 0;
        }
        self.stats.rounds += 1;
        obs::counter_add("cg.rounds", 1);

        let cap_duals: BTreeMap<(u32, u32), f64> = self
            .cap_rows
            .iter()
            .map(|(k, r)| (*k, sol.duals[r.index()]))
            .collect();
        // Budgets live in recycled scratch: taken out of the master for the
        // round (so `cost_of` can still borrow `self`), restored on exit.
        let mut budgets = std::mem::take(&mut self.budget_scratch);
        budgets.resize_with(self.jobs.len(), Vec::new);
        for (i, bi) in budgets.iter_mut().enumerate() {
            let lambda = sol.duals[self.job_rows[i].index()];
            let w = self.active[i].clone();
            bi.clear();
            bi.reserve(w.len());
            for j in w {
                let b = self.cost_of(i, j) - lambda * self.grid.len_of(j) - self.cg.tolerance;
                bi.push(b);
            }
        }

        let _pricing = obs::span("cg_pricing");
        // lint: allow(wallclock, reason = "cg.pricing_ns is a reporting-only counter; no scheduling decision reads it")
        let t0 = std::time::Instant::now();
        let proposals = {
            let ctx = PricingContext {
                graph: &self.graph,
                jobs: &self.jobs,
                windows: &self.active,
                cap_duals: &cap_duals,
                budgets: &budgets,
                pool: &self.pool,
            };
            pricer.price(&ctx)
        };
        self.stats.pricer_calls += 1;
        let spent = t0.elapsed().as_nanos() as u64;
        self.stats.pricing_ns += spent;
        obs::counter_add("cg.pricer_calls", 1);
        obs::counter_add("cg.pricing_ns", spent);
        drop(_pricing);

        let mut added = 0usize;
        for (job, path) in proposals {
            if self.pool.contains(job, &path) {
                continue;
            }
            // Exact reduced-cost verification with unclamped duals: the
            // path must improve in at least one active slice.
            let w = self.active[job].clone();
            let improving = w.clone().any(|j| {
                let load: f64 = path
                    .edges()
                    .iter()
                    .map(|e| cap_duals.get(&(e.0, j as u32)).copied().unwrap_or(0.0))
                    .sum();
                load < budgets[job][j - w.start]
            });
            if !improving {
                continue;
            }
            added += self.add_path(job, path);
        }
        self.stats.columns_added += added as u64;
        obs::counter_add("cg.columns_added", added as u64);
        self.budget_scratch = budgets;
        added
    }

    /// Materializes `path` for `job` over its full envelope window:
    /// missing capacity rows first (empty — by the coverage invariant no
    /// existing column crosses an unmaterialized `(edge, slice)`), then
    /// the columns, bounded by the active window. Returns the number of
    /// columns added.
    fn add_path(&mut self, job: usize, path: Path) -> usize {
        let env = self.windows[job].clone();
        // Rows before columns, in sorted key order.
        let mut missing: Vec<(u32, u32)> = Vec::new();
        for &e in path.edges() {
            for j in env.clone() {
                let key = (e.0, j as u32);
                if !self.cap_rows.contains_key(&key) && !missing.contains(&key) {
                    missing.push(key);
                }
            }
        }
        missing.sort_unstable();
        if !missing.is_empty() {
            let new_rows: Vec<NewRow> = missing
                .iter()
                .map(|&(e, _)| NewRow {
                    lower: f64::NEG_INFINITY,
                    upper: self.graph.wavelengths(EdgeId(e)) as f64,
                    entries: Vec::new(),
                })
                .collect();
            let rows = self.session.add_rows(&new_rows);
            for (key, row) in missing.iter().zip(rows) {
                self.cap_rows.insert(*key, row);
            }
        }

        let path_idx = self.pool.paths[job].len();
        let mut new_cols = Vec::with_capacity(env.len());
        for j in env.clone() {
            let mut entries: Vec<(Row, f64)> = vec![(self.job_rows[job], self.grid.len_of(j))];
            for &e in path.edges() {
                entries.push((self.cap_rows[&(e.0, j as u32)], 1.0));
            }
            let upper = if self.active[job].contains(&j) {
                f64::INFINITY
            } else {
                0.0
            };
            new_cols.push(NewColumn {
                lower: 0.0,
                upper,
                cost: self.cost_of(job, j),
                entries,
            });
        }
        let cols = self.session.add_columns(&new_cols);
        for (j, col) in env.clone().zip(cols) {
            self.lp_cols.push(col);
            self.pool.cols.push(PoolCol {
                job: job as u32,
                path: path_idx as u32,
                slice: j as u32,
            });
        }
        self.pool.paths[job].push(path);
        env.len()
    }

    /// Materializes the converged pool as a standard [`Instance`] (the
    /// pool paths become the allowed paths), so schedules, LPD/LPDAR and
    /// all metrics work downstream exactly as after a monolithic build.
    pub fn materialize(&self) -> Instance {
        self.materialize_for(&self.jobs)
    }

    /// Like [`materialize`](Self::materialize) but over substitute jobs
    /// (same count, sources and destinations — RET passes the jobs
    /// extended to the current trial deadline).
    pub fn materialize_for(&self, jobs: &[Job]) -> Instance {
        assert_eq!(jobs.len(), self.jobs.len());
        Instance::build_with_paths(
            &self.graph,
            jobs,
            self.demands.clone(),
            &self.config,
            self.pool.paths.clone(),
        )
    }

    /// Maps a master solution's column values onto `inst`'s variable
    /// space (an instance from [`materialize`](Self::materialize) /
    /// [`materialize_for`](Self::materialize_for)). Pool columns whose
    /// slice falls outside the instance window are dropped — they are
    /// bound to zero whenever the active windows match the instance.
    pub fn values_on(&self, inst: &Instance, x: &[f64]) -> Vec<f64> {
        let mut v = vec![0.0; inst.vars.len()];
        for (k, pc) in self.pool.cols.iter().enumerate() {
            let (job, pi, slice) = (pc.job as usize, pc.path as usize, pc.slice as usize);
            if inst.vars.window(job).contains(&slice) {
                v[inst.vars.var(job, pi, slice)] = x[self.lp_cols[k].index()];
            }
        }
        v
    }
}

/// Runs the price–resolve loop on `master`'s **current** form: solve,
/// price, augment, repeat until the pricer prices out (or the round cap is
/// hit, or a non-optimal status stops the loop — RET's Quick-Finish form
/// can legitimately be infeasible). Returns the final restricted solution.
pub fn price_resolve(
    master: &mut CgMaster,
    pricer: &mut dyn Pricer,
) -> Result<Solution, SolveError> {
    price_resolve_until(master, pricer, |_| false)
}

/// [`price_resolve`] with an early-stop predicate, checked on each
/// restricted optimum *before* pricing. Stopping early is only sound when
/// the caller needs a one-sided answer: the restricted objective is a
/// lower bound on the universe optimum (Maximize), so once a feasibility
/// threshold is reached, more columns cannot un-reach it. RET's bisection
/// probes use this — a probe only needs pricing to optimality to certify
/// *in*feasibility, and stopping at the threshold keeps the pool lean.
pub fn price_resolve_until(
    master: &mut CgMaster,
    pricer: &mut dyn Pricer,
    stop: impl Fn(&Solution) -> bool,
) -> Result<Solution, SolveError> {
    let mut rounds = 0usize;
    loop {
        let sol = master.solve()?;
        if sol.status != Status::Optimal || stop(&sol) {
            return Ok(sol);
        }
        if master.price_and_augment(&sol, pricer, rounds) == 0 {
            return Ok(sol);
        }
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use crate::stage1::{solve_stage1, solve_stage1_colgen};
    use wavesched_net::abilene14;
    use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

    fn setup(n_jobs: usize, seed: u64) -> (Graph, Vec<Job>, Vec<f64>, InstanceConfig) {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n_jobs,
            seed,
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(4);
        let demands: Vec<f64> = jobs.iter().map(|j| cfg.demand_units(j.size_gb)).collect();
        (g, jobs, demands, cfg)
    }

    #[test]
    fn exhaustive_pricer_matches_monolithic_stage1() {
        let (g, jobs, demands, cfg) = setup(10, 42);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
        let mono = solve_stage1(&inst).unwrap();

        let cg = ColGenConfig {
            pricer: PricerChoice::Exhaustive,
            ..Default::default()
        };
        let mut master = CgMaster::build(&g, &jobs, demands, &cfg, &cg).unwrap();
        let mut pricer = cg.pricer.build(cfg.paths_per_job);
        let z = solve_stage1_colgen(&mut master, pricer.as_mut()).unwrap();
        assert!(
            (z - mono.z_star).abs() < 1e-6,
            "colgen z* {z} vs monolithic {}",
            mono.z_star
        );
    }

    #[test]
    fn reduced_cost_pricer_at_least_exhaustive() {
        let (g, jobs, demands, cfg) = setup(12, 7);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
        let mono = solve_stage1(&inst).unwrap();

        let cg = ColGenConfig::default(); // reduced-cost
        let mut master = CgMaster::build(&g, &jobs, demands, &cfg, &cg).unwrap();
        let mut pricer = cg.pricer.build(cfg.paths_per_job);
        let z = solve_stage1_colgen(&mut master, pricer.as_mut()).unwrap();
        // The reduced-cost pricer optimizes over ALL simple paths, a
        // superset of the Yen set: its optimum can only be >= (up to tol).
        assert!(
            z >= mono.z_star - 1e-6,
            "colgen z* {z} below Yen optimum {}",
            mono.z_star
        );
        let st = master.stats();
        assert!(st.rounds >= 1);
        assert!(st.pricer_calls >= 1);
    }

    #[test]
    fn pool_stays_restricted() {
        let (g, jobs, demands, cfg) = setup(10, 42);
        let cg = ColGenConfig::default();
        let mut master = CgMaster::build(&g, &jobs, demands, &cfg, &cg).unwrap();
        let mut pricer = cg.pricer.build(cfg.paths_per_job);
        solve_stage1_colgen(&mut master, pricer.as_mut()).unwrap();
        // Exhaustive column count over the same jobs.
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
        assert!(
            master.pool().num_cols() <= inst.vars.len(),
            "pool {} vs exhaustive {}",
            master.pool().num_cols(),
            inst.vars.len()
        );
    }

    #[test]
    fn seed_paths_are_shortest() {
        let (g, jobs, demands, cfg) = setup(5, 3);
        let cg = ColGenConfig::default();
        let master = CgMaster::build(&g, &jobs, demands, &cfg, &cg).unwrap();
        for (i, job) in jobs.iter().enumerate() {
            let want = dijkstra::shortest_path(&g, job.src, job.dst).unwrap();
            assert_eq!(master.pool().paths_of(i)[0], want);
        }
    }

    #[test]
    fn round_cap_stops_pricing() {
        let (g, jobs, demands, cfg) = setup(6, 9);
        let cg = ColGenConfig {
            max_rounds: 0,
            ..Default::default()
        };
        let mut master = CgMaster::build(&g, &jobs, demands, &cfg, &cg).unwrap();
        let mut pricer = cg.pricer.build(cfg.paths_per_job);
        master.set_stage1();
        let sol = master.solve().unwrap();
        assert_eq!(master.price_and_augment(&sol, pricer.as_mut(), 0), 0);
        assert_eq!(master.stats().rounds, 0);
    }

    #[test]
    fn values_map_onto_materialized_instance() {
        let (g, jobs, demands, cfg) = setup(8, 5);
        let cg = ColGenConfig::default();
        let mut master = CgMaster::build(&g, &jobs, demands, &cfg, &cg).unwrap();
        let mut pricer = cg.pricer.build(cfg.paths_per_job);
        let z = solve_stage1_colgen(&mut master, pricer.as_mut()).unwrap();
        let sol = master.solve().unwrap();
        let inst = master.materialize();
        let x = master.values_on(&inst, &sol.x);
        let sched = crate::schedule::Schedule::from_values(&inst, x);
        assert!(sched.max_capacity_violation(&inst) < 1e-6);
        for i in 0..inst.num_jobs() {
            assert!(
                sched.throughput(&inst, i) >= z - 1e-5,
                "job {i} moved less than Z*"
            );
        }
    }
}
