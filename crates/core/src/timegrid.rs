//! Time slices: the paper's `I(·)` slice-index map and `LEN(j)`.
//!
//! The controller divides time into slices; wavelength assignments are
//! constant within a slice. This grid supports non-uniform slice lengths
//! (the formulations multiply by `LEN(j)` everywhere), although every
//! experiment in the paper — and in this reproduction — uses unit slices.
//!
//! **Window convention.** The paper zeroes `x_i(p, j)` for `j <= I(S_i)` or
//! `j > I(E_i)`. When requested times fall on slice boundaries that equals
//! "slices fully contained in `[S_i, E_i]`", which is the rule implemented
//! here; for mid-slice times the contained-slices rule is the conservative
//! reading that actually guarantees "finish before the requested end time".

use std::ops::Range;

/// A finite grid of consecutive time slices starting at time 0.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeGrid {
    /// Slice boundaries: slice `j` covers `[bounds[j], bounds[j+1])`.
    bounds: Vec<f64>,
}

impl TimeGrid {
    /// A grid of `n` unit-length slices covering `[0, n)`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "grid needs at least one slice");
        TimeGrid {
            bounds: (0..=n).map(|i| i as f64).collect(),
        }
    }

    /// A grid from explicit boundaries (strictly increasing, starting at 0).
    pub fn from_bounds(bounds: Vec<f64>) -> Self {
        assert!(bounds.len() >= 2, "need at least one slice");
        // lint: allow(float-eq, reason = "validates a caller-supplied sentinel: the grid origin must be exactly 0.0, not merely near it")
        assert!(bounds[0] == 0.0, "grid must start at time 0");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        TimeGrid { bounds }
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.bounds.len() - 1
    }

    /// End of the grid (start of time is always 0).
    pub fn horizon(&self) -> f64 {
        // lint: allow(lib-unwrap, reason = "invariant: both constructors assert at least two boundaries, so `bounds` is never empty")
        *self.bounds.last().expect("invariant: non-empty bounds")
    }

    /// `LEN(j)`: length of slice `j`.
    pub fn len_of(&self, j: usize) -> f64 {
        self.bounds[j + 1] - self.bounds[j]
    }

    /// Start time of slice `j`.
    pub fn start_of(&self, j: usize) -> f64 {
        self.bounds[j]
    }

    /// End time of slice `j`.
    pub fn end_of(&self, j: usize) -> f64 {
        self.bounds[j + 1]
    }

    /// The paper's `I(t)`: index of the slice containing time `t`. Times at
    /// or beyond the horizon map to the last slice.
    pub fn slice_index(&self, t: f64) -> usize {
        assert!(t >= 0.0, "negative time");
        match self.bounds.binary_search_by(|b| b.total_cmp(&t)) {
            Ok(i) => i.min(self.num_slices() - 1),
            Err(i) => (i - 1).min(self.num_slices() - 1),
        }
    }

    /// The slices on which a job with requested window `[start, end]` may be
    /// assigned wavelengths: slices fully contained in the window, clipped
    /// to the grid. May be empty.
    pub fn window_slices(&self, start: f64, end: f64) -> Range<usize> {
        assert!(start <= end, "window crossed");
        let n = self.num_slices();
        // First slice whose start is >= start.
        let first = self.bounds[..n].partition_point(|&b| b < start);
        // One past the last slice whose end is <= end.
        let last = self.bounds[1..].partition_point(|&b| b <= end);
        if first >= last {
            first..first // empty
        } else {
            first..last
        }
    }

    /// Extends the grid with unit slices (or the last slice's length for
    /// non-uniform grids) until its horizon reaches at least `t`.
    pub fn extend_to(&mut self, t: f64) {
        let step = self.len_of(self.num_slices() - 1);
        while self.horizon() < t {
            let next = self.horizon() + step;
            self.bounds.push(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_basics() {
        let g = TimeGrid::uniform(10);
        assert_eq!(g.num_slices(), 10);
        assert_eq!(g.horizon(), 10.0);
        assert_eq!(g.len_of(3), 1.0);
        assert_eq!(g.start_of(3), 3.0);
        assert_eq!(g.end_of(3), 4.0);
    }

    #[test]
    fn slice_index_map() {
        let g = TimeGrid::uniform(5);
        assert_eq!(g.slice_index(0.0), 0);
        assert_eq!(g.slice_index(0.99), 0);
        assert_eq!(g.slice_index(1.0), 1);
        assert_eq!(g.slice_index(4.5), 4);
        assert_eq!(g.slice_index(5.0), 4); // clipped to last slice
        assert_eq!(g.slice_index(99.0), 4);
    }

    #[test]
    fn window_on_boundaries() {
        let g = TimeGrid::uniform(10);
        assert_eq!(g.window_slices(2.0, 6.0), 2..6);
        assert_eq!(g.window_slices(0.0, 10.0), 0..10);
    }

    #[test]
    fn window_mid_slice_is_conservative() {
        let g = TimeGrid::uniform(10);
        // Start mid-slice: first fully-contained slice is 3.
        assert_eq!(g.window_slices(2.5, 6.0), 3..6);
        // End mid-slice: slice 5 ([5,6)) not fully contained in [2, 5.5].
        assert_eq!(g.window_slices(2.0, 5.5), 2..5);
    }

    #[test]
    fn empty_window() {
        let g = TimeGrid::uniform(10);
        let w = g.window_slices(2.5, 3.2);
        assert!(w.is_empty());
    }

    #[test]
    fn window_clips_to_grid() {
        let g = TimeGrid::uniform(5);
        assert_eq!(g.window_slices(3.0, 50.0), 3..5);
    }

    #[test]
    fn non_uniform_grid() {
        let g = TimeGrid::from_bounds(vec![0.0, 2.0, 3.0, 6.0]);
        assert_eq!(g.num_slices(), 3);
        assert_eq!(g.len_of(0), 2.0);
        assert_eq!(g.len_of(2), 3.0);
        assert_eq!(g.slice_index(2.5), 1);
        assert_eq!(g.window_slices(0.0, 3.0), 0..2);
    }

    #[test]
    fn extend_to_grows() {
        let mut g = TimeGrid::uniform(4);
        g.extend_to(7.5);
        assert!(g.horizon() >= 7.5);
        assert_eq!(g.num_slices(), 8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_panic() {
        TimeGrid::from_bounds(vec![0.0, 1.0, 1.0]);
    }
}
