//! Time slices: the paper's `I(·)` slice-index map and `LEN(j)`.
//!
//! The controller divides time into slices; wavelength assignments are
//! constant within a slice. This grid supports non-uniform slice lengths
//! (the formulations multiply by `LEN(j)` everywhere), although every
//! experiment in the paper — and in this reproduction — uses unit slices.
//!
//! **Window convention.** The paper zeroes `x_i(p, j)` for `j <= I(S_i)` or
//! `j > I(E_i)`. When requested times fall on slice boundaries that equals
//! "slices fully contained in `[S_i, E_i]`", which is the rule implemented
//! here; for mid-slice times the contained-slices rule is the conservative
//! reading that actually guarantees "finish before the requested end time".
//!
//! **Active-window grids.** A long-running controller only ever schedules
//! from the current time forward, so materializing boundaries all the way
//! back to time 0 wastes memory proportional to how long the system has
//! been up. [`TimeGrid::windowed`] builds a grid whose stored boundaries
//! start at a later origin while *slice indices stay global*: slice `j` of
//! a windowed unit grid still covers `[j, j+1)`, exactly as on the full
//! grid, so schedules, capacity-group keys and CSV outputs are
//! byte-identical to a full-horizon build. The elided prefix — slices that
//! can never carry a variable of any active job — stores nothing; because
//! it consists of unit slices by construction, per-slice accessors
//! synthesize its values (`LEN = 1`, `start_of(j) = j`) instead of storing
//! them, so windowed grids are a drop-in for full grids at every call site.

use std::ops::Range;

/// A finite grid of consecutive time slices.
///
/// Full grids ([`uniform`](TimeGrid::uniform),
/// [`from_bounds`](TimeGrid::from_bounds)) start at time 0. Active-window
/// grids ([`windowed`](TimeGrid::windowed)) elide a prefix of `offset`
/// whole unit slices; all public methods keep using *global* slice indices
/// and absolute times, so consumers never see the difference.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeGrid {
    /// Slice boundaries: global slice `offset + k` covers
    /// `[bounds[k], bounds[k+1])`.
    bounds: Vec<f64>,
    /// Number of elided unit slices before `bounds[0]` (0 for full grids).
    offset: usize,
    /// Common slice length when the grid is known uniform — enables the
    /// O(1) `slice_index` fast path. `None` falls back to binary search.
    uniform_step: Option<f64>,
}

impl TimeGrid {
    /// A grid of `n` unit-length slices covering `[0, n)`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "grid needs at least one slice");
        TimeGrid {
            bounds: (0..=n).map(|i| i as f64).collect(),
            offset: 0,
            uniform_step: Some(1.0),
        }
    }

    /// An active-window grid of `n` unit-length slices covering
    /// `[origin, origin + n)`, with the `origin` slices before it elided.
    /// Global slice indices are preserved: the first addressable slice is
    /// slice `origin`, covering `[origin, origin + 1)` exactly as it would
    /// on [`TimeGrid::uniform`]`(origin + n)`.
    pub fn windowed(origin: usize, n: usize) -> Self {
        assert!(n > 0, "grid needs at least one slice");
        TimeGrid {
            bounds: (origin..=origin + n).map(|i| i as f64).collect(),
            offset: origin,
            uniform_step: Some(1.0),
        }
    }

    /// A grid from explicit boundaries (strictly increasing, starting at 0).
    pub fn from_bounds(bounds: Vec<f64>) -> Self {
        assert!(bounds.len() >= 2, "need at least one slice");
        // lint: allow(float-eq, reason = "validates a caller-supplied sentinel: the grid origin must be exactly 0.0, not merely near it")
        assert!(bounds[0] == 0.0, "grid must start at time 0");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        TimeGrid {
            bounds,
            offset: 0,
            uniform_step: None,
        }
    }

    /// Local index of global slice `j` (callers guard `j >= offset`).
    #[inline]
    fn local(&self, j: usize) -> usize {
        debug_assert!(j >= self.offset);
        j - self.offset
    }

    /// Number of stored (addressable) slices.
    #[inline]
    fn stored_slices(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of slices through the horizon, counting the elided prefix:
    /// valid global slice indices are `first_slice()..num_slices()`. For
    /// full grids (the default) this is simply the slice count.
    pub fn num_slices(&self) -> usize {
        self.offset + self.stored_slices()
    }

    /// First addressable global slice index (0 for full grids; the window
    /// origin for [`TimeGrid::windowed`] grids).
    pub fn first_slice(&self) -> usize {
        self.offset
    }

    /// Start time of the grid's addressable window (0 for full grids).
    pub fn origin(&self) -> f64 {
        self.bounds[0]
    }

    /// End of the grid (start of time is always 0).
    pub fn horizon(&self) -> f64 {
        // lint: allow(lib-unwrap, reason = "invariant: both constructors assert at least two boundaries, so `bounds` is never empty")
        *self.bounds.last().expect("invariant: non-empty bounds")
    }

    /// `LEN(j)`: length of slice `j`. On windowed grids the elided prefix
    /// consists of unit slices by construction, so its lengths are
    /// synthesized rather than stored.
    pub fn len_of(&self, j: usize) -> f64 {
        if j < self.offset {
            return 1.0;
        }
        let k = self.local(j);
        self.bounds[k + 1] - self.bounds[k]
    }

    /// Start time of slice `j` (synthesized for the elided unit prefix).
    pub fn start_of(&self, j: usize) -> f64 {
        if j < self.offset {
            return j as f64;
        }
        self.bounds[self.local(j)]
    }

    /// End time of slice `j` (synthesized for the elided unit prefix).
    pub fn end_of(&self, j: usize) -> f64 {
        if j < self.offset {
            return (j + 1) as f64;
        }
        self.bounds[self.local(j) + 1]
    }

    /// The paper's `I(t)`: index of the slice containing time `t`. Times at
    /// or beyond the horizon map to the last slice; on a windowed grid,
    /// times before the origin map to the first addressable slice.
    pub fn slice_index(&self, t: f64) -> usize {
        assert!(t >= 0.0, "negative time");
        let last = self.stored_slices() - 1;
        // O(1) fast path for uniform grids (the only kind any experiment
        // uses). Guarded: the computed slice must actually contain `t`,
        // otherwise (floating-point edge) fall back to the exact search.
        if let Some(step) = self.uniform_step {
            let rel = (t - self.bounds[0]) / step;
            if rel >= 0.0 {
                let k = (rel as usize).min(last);
                if self.bounds[k] <= t && (k == last || t < self.bounds[k + 1]) {
                    return self.offset + k;
                }
            } else {
                return self.offset; // before the window: clip to its start
            }
        }
        let k = match self.bounds.binary_search_by(|b| b.total_cmp(&t)) {
            Ok(i) => i.min(last),
            Err(0) => 0, // before the window (only reachable when offset > 0)
            Err(i) => (i - 1).min(last),
        };
        self.offset + k
    }

    /// The slices on which a job with requested window `[start, end]` may be
    /// assigned wavelengths: slices fully contained in the window, clipped
    /// to the grid (including its active window). May be empty.
    pub fn window_slices(&self, start: f64, end: f64) -> Range<usize> {
        assert!(start <= end, "window crossed");
        let n = self.stored_slices();
        // First stored slice whose start is >= start.
        let first = self.bounds[..n].partition_point(|&b| b < start);
        // One past the last stored slice whose end is <= end.
        let last = self.bounds[1..].partition_point(|&b| b <= end);
        if first >= last {
            self.offset + first..self.offset + first // empty
        } else {
            self.offset + first..self.offset + last
        }
    }

    /// Extends the grid with unit slices (or the last slice's length for
    /// non-uniform grids) until its horizon reaches at least `t`.
    pub fn extend_to(&mut self, t: f64) {
        let step = self.bounds[self.bounds.len() - 1] - self.bounds[self.bounds.len() - 2];
        while self.horizon() < t {
            let next = self.horizon() + step;
            self.bounds.push(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_basics() {
        let g = TimeGrid::uniform(10);
        assert_eq!(g.num_slices(), 10);
        assert_eq!(g.first_slice(), 0);
        assert_eq!(g.horizon(), 10.0);
        assert_eq!(g.len_of(3), 1.0);
        assert_eq!(g.start_of(3), 3.0);
        assert_eq!(g.end_of(3), 4.0);
    }

    #[test]
    fn slice_index_map() {
        let g = TimeGrid::uniform(5);
        assert_eq!(g.slice_index(0.0), 0);
        assert_eq!(g.slice_index(0.99), 0);
        assert_eq!(g.slice_index(1.0), 1);
        assert_eq!(g.slice_index(4.5), 4);
        assert_eq!(g.slice_index(5.0), 4); // clipped to last slice
        assert_eq!(g.slice_index(99.0), 4);
    }

    #[test]
    fn window_on_boundaries() {
        let g = TimeGrid::uniform(10);
        assert_eq!(g.window_slices(2.0, 6.0), 2..6);
        assert_eq!(g.window_slices(0.0, 10.0), 0..10);
    }

    #[test]
    fn window_mid_slice_is_conservative() {
        let g = TimeGrid::uniform(10);
        // Start mid-slice: first fully-contained slice is 3.
        assert_eq!(g.window_slices(2.5, 6.0), 3..6);
        // End mid-slice: slice 5 ([5,6)) not fully contained in [2, 5.5].
        assert_eq!(g.window_slices(2.0, 5.5), 2..5);
    }

    #[test]
    fn empty_window() {
        let g = TimeGrid::uniform(10);
        let w = g.window_slices(2.5, 3.2);
        assert!(w.is_empty());
    }

    #[test]
    fn window_clips_to_grid() {
        let g = TimeGrid::uniform(5);
        assert_eq!(g.window_slices(3.0, 50.0), 3..5);
    }

    #[test]
    fn non_uniform_grid() {
        let g = TimeGrid::from_bounds(vec![0.0, 2.0, 3.0, 6.0]);
        assert_eq!(g.num_slices(), 3);
        assert_eq!(g.len_of(0), 2.0);
        assert_eq!(g.len_of(2), 3.0);
        assert_eq!(g.slice_index(2.5), 1);
        assert_eq!(g.window_slices(0.0, 3.0), 0..2);
    }

    #[test]
    fn extend_to_grows() {
        let mut g = TimeGrid::uniform(4);
        g.extend_to(7.5);
        assert!(g.horizon() >= 7.5);
        assert_eq!(g.num_slices(), 8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_panic() {
        TimeGrid::from_bounds(vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn windowed_grid_uses_global_indices() {
        // A windowed grid must agree with the full grid it elides, slice
        // for slice, on every addressable index.
        let full = TimeGrid::uniform(20);
        let win = TimeGrid::windowed(12, 8);
        assert_eq!(win.first_slice(), 12);
        assert_eq!(win.num_slices(), 20);
        assert_eq!(win.origin(), 12.0);
        assert_eq!(win.horizon(), 20.0);
        // Stored slices (12..20) and the synthesized unit prefix (0..12)
        // both agree with the full grid.
        for j in 0..20 {
            assert_eq!(win.len_of(j), full.len_of(j));
            assert_eq!(win.start_of(j), full.start_of(j));
            assert_eq!(win.end_of(j), full.end_of(j));
        }
        for t in [12.0, 12.3, 15.0, 19.99, 20.0, 77.0] {
            assert_eq!(win.slice_index(t), full.slice_index(t), "t = {t}");
        }
        // Windows inside the active range match the full grid exactly.
        assert_eq!(
            win.window_slices(13.0, 18.0),
            full.window_slices(13.0, 18.0)
        );
        assert_eq!(
            win.window_slices(12.5, 19.5),
            full.window_slices(12.5, 19.5)
        );
        // Windows reaching before the origin are clipped to it.
        assert_eq!(win.window_slices(3.0, 16.0), 12..16);
        // Times before the origin clip to the first addressable slice.
        assert_eq!(win.slice_index(2.0), 12);
    }

    #[test]
    fn windowed_grid_extends() {
        let mut g = TimeGrid::windowed(100, 4);
        g.extend_to(110.0);
        assert_eq!(g.num_slices(), 110);
        assert_eq!(g.end_of(109), 110.0);
    }

    /// Differential check of the uniform O(1) fast path against the binary
    /// search over random probe times, and of the binary-search fallback on
    /// random non-uniform grids against a linear-scan oracle.
    #[test]
    fn slice_index_fast_path_matches_search() {
        // Deterministic LCG, no RNG crate needed.
        let mut state = 0x5eed_0123_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        // Uniform grids (full and windowed): fast path vs a forced binary
        // search through an identical grid with the fast path disabled.
        for _ in 0..50 {
            let origin = (next() % 1000) as usize;
            let n = 1 + (next() % 64) as usize;
            let fast = TimeGrid::windowed(origin, n);
            let slow = TimeGrid {
                uniform_step: None,
                ..fast.clone()
            };
            for _ in 0..100 {
                // Probes span before-window, inside, boundaries, beyond.
                let t = (next() % (1000 + 64 + 10) as u32) as f64 + (next() % 1000) as f64 / 1000.0;
                assert_eq!(
                    fast.slice_index(t),
                    slow.slice_index(t),
                    "origin {origin}, n {n}, t {t}"
                );
            }
        }

        // Non-uniform grids: binary search vs linear scan.
        for _ in 0..50 {
            let n = 1 + (next() % 16) as usize;
            let mut bounds = vec![0.0];
            for _ in 0..n {
                let step = 0.25 + (next() % 400) as f64 / 100.0;
                bounds.push(bounds.last().unwrap() + step);
            }
            let g = TimeGrid::from_bounds(bounds.clone());
            for _ in 0..50 {
                let t = (next() % 1000) as f64 / 1000.0 * (g.horizon() + 2.0);
                let got = g.slice_index(t);
                let want = (0..n)
                    .find(|&j| t >= bounds[j] && t < bounds[j + 1])
                    .unwrap_or(n - 1);
                assert_eq!(got, want, "bounds {bounds:?}, t {t}");
            }
        }
    }
}
