//! # wavesched-core — the paper's scheduling algorithms
//!
//! Implements the admission-control and scheduling algorithms of *Wang,
//! Ranka, Xia — "Slotted Wavelength Scheduling for Bulk Transfers in
//! Research Networks"* (ICPP 2009):
//!
//! * [`timegrid`] — time slices, the slice-index map `I(·)` and `LEN(j)`.
//! * [`instance`] — a scheduling instance: network + jobs + allowed paths +
//!   normalized demands, with the `(job, path, slice)` variable enumeration
//!   shared by every formulation.
//! * [`schedule`] — wavelength-assignment schedules and their metrics
//!   (per-job throughput `Z_i`, weighted throughput, completion times,
//!   capacity checks).
//! * [`stage1`] — the Stage-1 maximum concurrent throughput LP (eqs. 1–5).
//! * [`gkflow`] — a Garg–Könemann approximation of Stage 1: combinatorial,
//!   certified-feasible, within `1 - O(epsilon)` of `Z*`.
//! * [`stage2`] — the Stage-2 weighted-throughput LP with the fairness
//!   constraint `Z_i >= (1-alpha) Z*` (eqs. 7–10, relaxed).
//! * [`lpdar`](crate::lpdar()) (module `lpdar`) — **LPD** (truncation) and
//!   **LPDAR** (truncation + the greedy bandwidth adjustment of
//!   Algorithm 1), the paper's key heuristic.
//! * [`ret`] — the Relaxing-End-Times problem: SUB-RET with the
//!   Quick-Finish objective and Algorithm 2's binary search + δ-growth.
//! * [`pipeline`] — the end-to-end "maximize throughput with end-time
//!   guarantee" pipeline with per-stage timings (Figs. 1–3).
//! * [`admission`] — the three overload actions: reject (footnote 1's
//!   binary search), shrink demands, extend deadlines.
//! * [`controller`] — the periodic network controller that re-optimizes
//!   every τ, carrying unfinished jobs forward.

#![warn(missing_docs)]

pub mod admission;
pub mod arena;
pub(crate) mod builders;
pub mod colgen;
pub mod controller;
pub mod gkflow;
pub mod instance;
pub mod lpdar;
pub mod pipeline;
pub mod report;
pub mod ret;
pub mod schedule;
pub mod stage1;
pub mod stage2;
pub mod timegrid;

pub use admission::{admit_by_priority, AdmissionOutcome};
pub use arena::BuildArena;
pub use colgen::{
    CgMaster, CgStats, ColGenConfig, ColumnPool, ExhaustivePricer, Pricer, PricerChoice,
    PricingContext, ReducedCostPricer,
};
pub use controller::{Controller, ControllerConfig, OverloadPolicy};
pub use gkflow::{approx_stage1, GkConfig, GkResult};
pub use instance::{Instance, InstanceConfig, VarMap};
pub use lpdar::{adjust_rates, adjust_rates_capped, lpdar, lpdar_capped, truncate, AdjustOrder};
pub use pipeline::{
    max_throughput_pipeline, max_throughput_pipeline_colgen, max_throughput_pipeline_in,
    PipelineResult,
};
pub use ret::{solve_ret, solve_ret_colgen, solve_ret_with_demands, RetConfig, RetMode, RetResult};
pub use schedule::Schedule;
pub use stage1::{solve_stage1, solve_stage1_colgen};
pub use stage2::{solve_stage2, solve_stage2_colgen, solve_stage2_weighted, WeightPolicy};
pub use timegrid::TimeGrid;
