//! Reusable LP-construction scratch, recycled across controller
//! invocations.
//!
//! Building a Stage-1/Stage-2/SUB-RET problem needs a handful of
//! short-lived buffers: the column handles aligned with the instance's
//! `VarMap` and a coefficient buffer refilled once per LP row. Allocating
//! them fresh on every controller period is wasted work in a long-running
//! replay, so they live in a [`BuildArena`] owned by the caller — the
//! `Controller` holds one for its lifetime, one-shot entry points create a
//! throwaway — following the `WorkVec` pattern the simplex kernels use.
//!
//! Every reuse of a previously-grown buffer is counted on the
//! `mem.arena_reuse_hits` counter (visible in `--report` output), which is
//! how the streaming benches prove steady-state builds stop allocating.

use wavesched_lp::Col;
use wavesched_obs as obs;

/// Scratch buffers for LP construction; see the module docs.
///
/// Acquire the buffers through [`BuildArena::scratch`]; they come back
/// cleared but with their capacity intact.
#[derive(Debug, Default)]
pub struct BuildArena {
    cols: Vec<Col>,
    coeffs: Vec<(Col, f64)>,
}

impl BuildArena {
    /// An empty arena. Buffers grow on first use and are kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and hands out the column and row-coefficient buffers.
    /// Records an `mem.arena_reuse_hits` counter tick when previously-grown
    /// capacity is being recycled.
    pub(crate) fn scratch(&mut self) -> (&mut Vec<Col>, &mut Vec<(Col, f64)>) {
        if self.cols.capacity() > 0 || self.coeffs.capacity() > 0 {
            obs::counter_add("mem.arena_reuse_hits", 1);
        }
        self.cols.clear();
        self.coeffs.clear();
        (&mut self.cols, &mut self.coeffs)
    }
}
