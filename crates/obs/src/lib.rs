//! # wavesched-obs — structured observability
//!
//! Zero-dependency instrumentation for the wavesched workspace: RAII
//! [spans](span) on the monotonic clock with nesting-aware paths, monotone
//! [counters](counter_add), and log₂-bucketed [histograms](record), all
//! collected into one process-wide registry.
//!
//! The layer is **disabled by default**. Every recording call first reads a
//! single relaxed [`AtomicBool`], so the disabled path costs one predictable
//! branch and touches no locks and no clocks — instrumentation can stay in
//! hot code permanently. Enable it with [`set_enabled`]; the diagnostic
//! [`recordings`] counter tells tests exactly how many instrumentation
//! branches were actually taken.
//!
//! Snapshots ([`snapshot`]) serialize to JSON lines ([`to_json_lines`]) and
//! parse back ([`parse_json_lines`]) without any external JSON crate, giving
//! bench binaries a stable `--report` schema. [`render_span_tree`] prints
//! the aggregated span hierarchy for the CLI's `--trace` flag.

#![warn(missing_docs)]

mod json;
pub mod mem;

pub use json::{parse_json_lines, to_json_lines};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Number of histogram buckets: bucket `i` counts values of bit length `i`
/// (so bucket 0 holds only the value 0, bucket 1 holds 1, bucket 2 holds
/// 2–3, …, bucket 64 holds values ≥ 2⁶³).
pub const HIST_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDINGS: AtomicU64 = AtomicU64::new(0);
static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Path prefix adopted from another thread (see [`attach`]): a worker
    /// thread's spans aggregate under the spawning span's path instead of
    /// starting a disconnected tree at the worker's root.
    static BASE_PATH: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Turns the whole layer on or off. Off (the default) makes every
/// instrumentation call a single-branch no-op.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// True when the layer is recording.
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Total number of instrumentation recordings taken by this process, ever
/// (not cleared by [`reset`]). With the layer disabled this value does not
/// move — the overhead-guard tests assert exactly that.
pub fn recordings() -> u64 {
    RECORDINGS.load(Relaxed)
}

#[derive(Clone, Copy)]
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

#[derive(Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
    spans: BTreeMap<String, SpanStat>,
}

fn lock() -> MutexGuard<'static, Inner> {
    REGISTRY
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Bucket index of `v`: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Adds `delta` to the monotone counter `name` (creating it at zero).
pub fn counter_add(name: &str, delta: u64) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    RECORDINGS.fetch_add(1, Relaxed);
    *lock().counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Records one observation of `value` into the histogram `name`.
pub fn record(name: &str, value: u64) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    RECORDINGS.fetch_add(1, Relaxed);
    let mut inner = lock();
    let h = inner.hists.entry(name.to_string()).or_default();
    h.count += 1;
    h.sum = h.sum.saturating_add(value);
    h.min = if h.count == 1 {
        value
    } else {
        h.min.min(value)
    };
    h.max = h.max.max(value);
    h.buckets[bucket_of(value)] += 1;
}

/// A scoped timer. Created by [`span`]; records its wall-clock duration
/// (monotonic clock) into the registry when dropped, under the `/`-joined
/// path of all spans live on this thread at creation time.
#[must_use = "a span records on drop; bind it with `let _span = ...`"]
pub struct Span {
    armed: Option<(String, Instant)>,
}

/// Opens a span named `name` nested under the spans currently live on this
/// thread (and under any [`attach`]ed parent path). When the layer is
/// disabled this is a single branch: no clock is read and nothing is
/// allocated.
pub fn span(name: &'static str) -> Span {
    if !ENABLED.load(Relaxed) {
        return Span { armed: None };
    }
    let local = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = if s.is_empty() {
            name.to_string()
        } else {
            let mut p = s.join("/");
            p.push('/');
            p.push_str(name);
            p
        };
        s.push(name);
        path
    });
    let path = BASE_PATH.with(|b| match &*b.borrow() {
        Some(base) => format!("{base}/{local}"),
        None => local,
    });
    Span {
        armed: Some((path, Instant::now())),
    }
}

/// The `/`-joined path of the spans currently live on this thread
/// (including any [`attach`]ed base), or `None` when no span is open or the
/// layer is disabled. Capture this on a spawning thread and hand it to
/// worker threads via [`attach`], so a pool worker's spans aggregate under
/// the span that spawned the work — `--report` output then still folds into
/// one tree.
pub fn current_span_path() -> Option<String> {
    if !ENABLED.load(Relaxed) {
        return None;
    }
    let local = SPAN_STACK.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            None
        } else {
            Some(s.join("/"))
        }
    });
    BASE_PATH.with(|b| match (&*b.borrow(), local) {
        (Some(base), Some(local)) => Some(format!("{base}/{local}")),
        (Some(base), None) => Some(base.clone()),
        (None, local) => local,
    })
}

/// Adopts `parent` (a path from [`current_span_path`], captured on another
/// thread) as the base path for every span this thread opens until the
/// returned guard drops. Passing `None` is a no-op guard, so call sites can
/// thread the capture through unconditionally.
#[must_use = "the attachment ends when the guard drops; bind it with `let _g = ...`"]
pub fn attach(parent: Option<String>) -> AttachGuard {
    let prev = BASE_PATH.with(|b| std::mem::replace(&mut *b.borrow_mut(), parent));
    AttachGuard { prev }
}

/// Restores the previously attached base path on drop. Created by
/// [`attach`].
pub struct AttachGuard {
    prev: Option<String>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        BASE_PATH.with(|b| *b.borrow_mut() = prev);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((path, start)) = self.armed.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            RECORDINGS.fetch_add(1, Relaxed);
            let mut inner = lock();
            let st = inner.spans.entry(path).or_default();
            st.count += 1;
            st.total_ns += ns;
            st.min_ns = if st.count == 1 { ns } else { st.min_ns.min(ns) };
            st.max_ns = st.max_ns.max(ns);
        }
    }
}

/// One registry metric, as exported by [`snapshot`]. The JSON-lines schema
/// emitted by [`to_json_lines`] maps each variant to one line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Metric {
    /// A monotone counter.
    Counter {
        /// Registry name.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// A log₂-bucketed histogram.
    Histogram {
        /// Registry name.
        name: String,
        /// Number of recorded observations.
        count: u64,
        /// Sum of observations (saturating).
        sum: u64,
        /// Smallest observation.
        min: u64,
        /// Largest observation.
        max: u64,
        /// Sparse `(bucket index, count)` pairs; the index is the bit
        /// length of the observed value (see [`HIST_BUCKETS`]).
        buckets: Vec<(u32, u64)>,
    },
    /// An aggregated span (all completions of one nesting path).
    Span {
        /// `/`-joined nesting path, e.g. `pipeline/stage1`.
        path: String,
        /// Number of completed spans on this path.
        count: u64,
        /// Total duration in nanoseconds.
        total_ns: u64,
        /// Shortest single span.
        min_ns: u64,
        /// Longest single span.
        max_ns: u64,
    },
}

/// Copies the registry out: counters, then histograms, then spans, each
/// sorted by name/path.
pub fn snapshot() -> Vec<Metric> {
    let inner = lock();
    let mut out = Vec::new();
    for (name, &value) in &inner.counters {
        out.push(Metric::Counter {
            name: name.clone(),
            value,
        });
    }
    for (name, h) in &inner.hists {
        let buckets = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        out.push(Metric::Histogram {
            name: name.clone(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets,
        });
    }
    for (path, s) in &inner.spans {
        out.push(Metric::Span {
            path: path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
        });
    }
    out
}

/// Clears every counter, histogram and span aggregate (the [`recordings`]
/// diagnostic is monotone and survives).
pub fn reset() {
    let mut inner = lock();
    inner.counters.clear();
    inner.hists.clear();
    inner.spans.clear();
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the aggregated span hierarchy as an indented text tree
/// (`count`, total and mean duration per path), for the CLI `--trace` flag.
pub fn render_span_tree() -> String {
    let inner = lock();
    let mut out = String::new();
    if inner.spans.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    out.push_str("span tree (count  total  mean):\n");
    // BTreeMap order puts every parent path immediately before its
    // children ('/' sorts below all path characters we use).
    for (path, s) in &inner.spans {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let mean = s.total_ns / s.count.max(1);
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{name:<w$} {:>6}  {:>9}  {:>9}\n",
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(mean),
            w = 28usize.saturating_sub(indent.len()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that flip the enable
    // bit so they cannot observe each other's state.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    fn counter_value(snap: &[Metric], want: &str) -> Option<u64> {
        snap.iter().find_map(|m| match m {
            Metric::Counter { name, value } if name == want => Some(*value),
            _ => None,
        })
    }

    #[test]
    fn disabled_is_a_no_op_and_takes_no_recording_branch() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(false);
        let before = recordings();
        counter_add("x", 3);
        record("h", 9);
        {
            let _s = span("quiet");
        }
        assert_eq!(recordings(), before, "disabled calls must record nothing");
        assert!(!snapshot().iter().any(|m| matches!(
            m,
            Metric::Counter { name, .. } if name == "x"
        )));
    }

    #[test]
    fn counters_accumulate() {
        with_enabled(|| {
            counter_add("a.b", 2);
            counter_add("a.b", 3);
            counter_add("zzz", 1);
            let snap = snapshot();
            assert_eq!(counter_value(&snap, "a.b"), Some(5));
            assert_eq!(counter_value(&snap, "zzz"), Some(1));
        });
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        with_enabled(|| {
            for v in [0u64, 1, 2, 3, 4, 1024] {
                record("h", v);
            }
            let snap = snapshot();
            let m = snap
                .iter()
                .find(|m| matches!(m, Metric::Histogram { name, .. } if name == "h"))
                .expect("histogram present");
            let Metric::Histogram {
                count,
                sum,
                min,
                max,
                buckets,
                ..
            } = m
            else {
                unreachable!()
            };
            assert_eq!(*count, 6);
            assert_eq!(*sum, 1034);
            assert_eq!(*min, 0);
            assert_eq!(*max, 1024);
            // 0 → bucket 0, 1 → 1, {2,3} → 2, 4 → 3, 1024 → 11.
            assert_eq!(
                buckets.as_slice(),
                &[(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]
            );
        });
    }

    #[test]
    fn spans_nest_into_paths() {
        with_enabled(|| {
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                }
                {
                    let _inner = span("inner");
                }
            }
            let snap = snapshot();
            let paths: Vec<(&str, u64)> = snap
                .iter()
                .filter_map(|m| match m {
                    Metric::Span { path, count, .. } => Some((path.as_str(), *count)),
                    _ => None,
                })
                .collect();
            assert_eq!(paths, vec![("outer", 1), ("outer/inner", 2)]);
            let tree = render_span_tree();
            assert!(tree.contains("outer"), "tree:\n{tree}");
            assert!(tree.contains("  inner"), "tree:\n{tree}");
        });
    }

    #[test]
    fn attach_nests_spans_under_foreign_path() {
        with_enabled(|| {
            let parent = {
                let _outer = span("outer");
                current_span_path()
            };
            assert_eq!(parent.as_deref(), Some("outer"));
            // Simulate a worker thread: fresh stack, adopted base path.
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = attach(parent.clone());
                    let _w = span("work");
                })
                .join()
                .unwrap();
            });
            let snap = snapshot();
            assert!(
                snap.iter()
                    .any(|m| matches!(m, Metric::Span { path, .. } if path == "outer/work")),
                "worker span should aggregate under the spawning path"
            );
        });
    }

    #[test]
    fn attach_guard_restores_previous_base() {
        with_enabled(|| {
            assert_eq!(current_span_path(), None);
            {
                let _g = attach(Some("root".to_string()));
                assert_eq!(current_span_path().as_deref(), Some("root"));
                {
                    let _h = attach(Some("other".to_string()));
                    assert_eq!(current_span_path().as_deref(), Some("other"));
                }
                assert_eq!(current_span_path().as_deref(), Some("root"));
            }
            assert_eq!(current_span_path(), None);
            // None attachment is a no-op guard.
            let _g = attach(None);
            assert_eq!(current_span_path(), None);
        });
    }

    #[test]
    fn current_span_path_is_none_when_disabled() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(false);
        let _s = span("ghost");
        assert_eq!(current_span_path(), None);
    }

    #[test]
    fn reset_clears_but_recordings_is_monotone() {
        with_enabled(|| {
            counter_add("c", 1);
            let taken = recordings();
            assert!(taken > 0);
            reset();
            assert!(snapshot().is_empty());
            assert_eq!(recordings(), taken);
        });
    }

    #[test]
    fn bucket_of_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < HIST_BUCKETS);
    }
}
