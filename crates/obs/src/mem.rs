//! Allocation tracking: a counting [`GlobalAlloc`] wrapper and the
//! process-wide byte counters behind the `mem.*` counter family.
//!
//! Binaries opt in by installing [`TrackingAlloc`] as their global
//! allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wavesched_obs::mem::TrackingAlloc = wavesched_obs::mem::TrackingAlloc;
//! ```
//!
//! Counting costs four relaxed atomic ops per allocation; without the
//! opt-in, [`stats`] reports zeros and every `mem.*` counter derived from
//! it stays zero. The replay engines read [`stats`] before and after each
//! controller invocation and emit the deltas as `mem.bytes_allocated` /
//! `mem.bytes_freed` counters plus a `mem.live_bytes` histogram — flat
//! deltas across a million-job replay are the proof that steady-state
//! memory tracks the active-job window, not the trace length.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE: AtomicU64 = AtomicU64::new(0);

/// A cumulative snapshot of the process's allocation counters.
///
/// All-zero unless the binary installed [`TrackingAlloc`]. Subtract two
/// snapshots for per-phase deltas; the counters are cumulative and never
/// reset (so concurrent readers always see monotone values).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Total bytes ever freed.
    pub freed_bytes: u64,
    /// High-water mark of live (allocated − freed) bytes.
    pub peak_live_bytes: u64,
}

impl MemStats {
    /// Currently live bytes (saturating: the two counters are read
    /// independently, so a racing free could transiently exceed).
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes.saturating_sub(self.freed_bytes)
    }
}

/// Reads the current allocation counters.
pub fn stats() -> MemStats {
    MemStats {
        allocated_bytes: ALLOCATED.load(Relaxed),
        freed_bytes: FREED.load(Relaxed),
        peak_live_bytes: PEAK_LIVE.load(Relaxed),
    }
}

fn on_alloc(size: u64) {
    let a = ALLOCATED.fetch_add(size, Relaxed) + size;
    let live = a.saturating_sub(FREED.load(Relaxed));
    // Monotone max via CAS; contention is rare (peak moves only on growth).
    let mut peak = PEAK_LIVE.load(Relaxed);
    while live > peak {
        match PEAK_LIVE.compare_exchange_weak(peak, live, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// A byte-counting wrapper around the [`System`] allocator.
///
/// Forwarding adds a handful of relaxed atomic operations per call and
/// changes no allocation behavior.
pub struct TrackingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the wrapper only adds relaxed counter updates.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        FREED.fetch_add(layout.size() as u64, Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            FREED.fetch_add(layout.size() as u64, Relaxed);
            on_alloc(new_size as u64);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_monotone_and_consistent() {
        // The test binary may or may not have the allocator installed;
        // either way the invariants hold.
        let a = stats();
        let _v: Vec<u64> = (0..4096).collect();
        let b = stats();
        assert!(b.allocated_bytes >= a.allocated_bytes);
        assert!(b.freed_bytes >= a.freed_bytes);
        assert!(b.peak_live_bytes >= a.peak_live_bytes);
        assert!(b.live_bytes() <= b.allocated_bytes);
    }

    #[test]
    fn mem_stats_delta_math() {
        let a = MemStats {
            allocated_bytes: 100,
            freed_bytes: 40,
            peak_live_bytes: 80,
        };
        assert_eq!(a.live_bytes(), 60);
        let zero = MemStats::default();
        assert_eq!(zero.live_bytes(), 0);
    }
}
