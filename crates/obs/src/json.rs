//! JSON-lines serialization of [`Metric`] snapshots, plus the matching
//! parser — both hand-rolled so the crate stays dependency-free.
//!
//! Schema: one JSON object per line, discriminated by `"type"`:
//!
//! ```text
//! {"type":"counter","name":"lp.iterations","value":123}
//! {"type":"histogram","name":"lp.eta_len","count":4,"sum":10,"min":1,"max":4,"buckets":[[1,2],[3,2]]}
//! {"type":"span","path":"pipeline/stage1","count":3,"total_ns":812345,"min_ns":1021,"max_ns":700111}
//! ```
//!
//! All numbers are unsigned 64-bit integers; `buckets` is a sparse array of
//! `[bucket_index, count]` pairs. Blank lines are ignored on input.

use crate::Metric;
use std::fmt::Write as _;

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes `metrics` into the JSON-lines report format (one object per
/// line, trailing newline).
pub fn to_json_lines(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        match m {
            Metric::Counter { name, value } => {
                out.push_str("{\"type\":\"counter\",\"name\":");
                push_json_str(&mut out, name);
                let _ = write!(out, ",\"value\":{value}}}");
            }
            Metric::Histogram {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            } => {
                out.push_str("{\"type\":\"histogram\",\"name\":");
                push_json_str(&mut out, name);
                let _ = write!(
                    out,
                    ",\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max},\"buckets\":["
                );
                for (i, (b, c)) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{b},{c}]");
                }
                out.push_str("]}");
            }
            Metric::Span {
                path,
                count,
                total_ns,
                min_ns,
                max_ns,
            } => {
                out.push_str("{\"type\":\"span\",\"path\":");
                push_json_str(&mut out, path);
                let _ = write!(
                    out,
                    ",\"count\":{count},\"total_ns\":{total_ns},\"min_ns\":{min_ns},\"max_ns\":{max_ns}}}"
                );
            }
        }
        out.push('\n');
    }
    out
}

/// A parsed JSON value — only the subset the report schema uses.
#[derive(Debug, PartialEq)]
enum JVal {
    Str(String),
    Num(u64),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(JVal::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number().map(JVal::Num),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            s.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            s.push('\\');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            s.push(char::from_u32(cp).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                }
                Some(_) => {
                    // Advance one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .ok_or("empty continuation")?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected digits at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}' got {other:?}")),
            }
        }
    }
}

fn field<'v>(obj: &'v [(String, JVal)], key: &str) -> Result<&'v JVal, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(obj: &[(String, JVal)], key: &str) -> Result<String, String> {
    match field(obj, key)? {
        JVal::Str(s) => Ok(s.clone()),
        _ => Err(format!("field {key:?} is not a string")),
    }
}

fn num_field(obj: &[(String, JVal)], key: &str) -> Result<u64, String> {
    match field(obj, key)? {
        JVal::Num(n) => Ok(*n),
        _ => Err(format!("field {key:?} is not an integer")),
    }
}

fn metric_of_line(line: &str) -> Result<Metric, String> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    let JVal::Obj(obj) = v else {
        return Err("line is not a JSON object".into());
    };
    match str_field(&obj, "type")?.as_str() {
        "counter" => Ok(Metric::Counter {
            name: str_field(&obj, "name")?,
            value: num_field(&obj, "value")?,
        }),
        "histogram" => {
            let JVal::Arr(raw) = field(&obj, "buckets")? else {
                return Err("field \"buckets\" is not an array".into());
            };
            let mut buckets = Vec::with_capacity(raw.len());
            for item in raw {
                match item {
                    JVal::Arr(pair) => match pair.as_slice() {
                        [JVal::Num(b), JVal::Num(c)] => {
                            let b = u32::try_from(*b).map_err(|_| "bucket index overflow")?;
                            if b as usize >= crate::HIST_BUCKETS {
                                return Err(format!("bucket index {b} out of range"));
                            }
                            buckets.push((b, *c));
                        }
                        _ => return Err("bucket entry is not [index, count]".into()),
                    },
                    _ => return Err("bucket entry is not an array".into()),
                }
            }
            Ok(Metric::Histogram {
                name: str_field(&obj, "name")?,
                count: num_field(&obj, "count")?,
                sum: num_field(&obj, "sum")?,
                min: num_field(&obj, "min")?,
                max: num_field(&obj, "max")?,
                buckets,
            })
        }
        "span" => Ok(Metric::Span {
            path: str_field(&obj, "path")?,
            count: num_field(&obj, "count")?,
            total_ns: num_field(&obj, "total_ns")?,
            min_ns: num_field(&obj, "min_ns")?,
            max_ns: num_field(&obj, "max_ns")?,
        }),
        other => Err(format!("unknown metric type {other:?}")),
    }
}

/// Parses a JSON-lines report back into metrics, validating the schema.
/// Blank lines are skipped; the error names the offending line.
pub fn parse_json_lines(text: &str) -> Result<Vec<Metric>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(metric_of_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Metric> {
        vec![
            Metric::Counter {
                name: "lp.iterations".into(),
                value: 123,
            },
            Metric::Counter {
                name: "odd \"name\"\\with\nescapes".into(),
                value: 0,
            },
            Metric::Histogram {
                name: "lp.eta_len".into(),
                count: 4,
                sum: 10,
                min: 1,
                max: 4,
                buckets: vec![(1, 2), (3, 2)],
            },
            Metric::Span {
                path: "pipeline/stage1".into(),
                count: 3,
                total_ns: 812_345,
                min_ns: 1_021,
                max_ns: 700_111,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let metrics = sample();
        let text = to_json_lines(&metrics);
        assert_eq!(text.lines().count(), metrics.len());
        let back = parse_json_lines(&text).expect("parses");
        assert_eq!(back, metrics);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", to_json_lines(&sample()));
        assert_eq!(parse_json_lines(&text).unwrap(), sample());
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for (bad, what) in [
            ("{\"type\":\"counter\",\"name\":\"x\"}", "missing value"),
            ("{\"type\":\"rocket\",\"name\":\"x\",\"value\":1}", "bad type"),
            ("{\"type\":\"counter\",\"name\":\"x\",\"value\":-1}", "negative"),
            ("[1,2,3]", "not an object"),
            ("{\"type\":\"counter\",\"name\":\"x\",\"value\":1} junk", "trailing"),
            (
                "{\"type\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"buckets\":[[99,1]]}",
                "bucket range",
            ),
        ] {
            let text = format!("{}{bad}\n", to_json_lines(&sample()));
            let err = parse_json_lines(&text).expect_err(what);
            assert!(err.starts_with("line 5:"), "{what}: {err}");
        }
    }

    #[test]
    fn empty_report_is_valid() {
        assert_eq!(parse_json_lines("").unwrap(), Vec::new());
        assert_eq!(to_json_lines(&[]), "");
    }
}
