//! Multi-threaded stress tests for the process-wide registry.
//!
//! The library's unit tests exercise the registry from one thread at a
//! time; these tests hammer it from N threads concurrently and assert that
//! the aggregates match the serial sum exactly — counters and histograms
//! merge under the registry mutex, so no recording may be lost or double
//! counted. They live in their own integration-test binary (a dedicated
//! process) so no other test can race the process-wide enabled flag.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use wavesched_obs as obs;

/// Serialize the tests in this binary: they all toggle the global registry.
static OBS_LOCK: Mutex<()> = Mutex::new(());

const THREADS: usize = 8;
const PER_THREAD: u64 = 2_000;

fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::set_enabled(true);
    let r = f();
    obs::set_enabled(false);
    obs::reset();
    r
}

fn counter(snap: &[obs::Metric], want: &str) -> Option<u64> {
    snap.iter().find_map(|m| match m {
        obs::Metric::Counter { name, value } if name == want => Some(*value),
        _ => None,
    })
}

#[test]
fn concurrent_counters_sum_exactly() {
    with_enabled(|| {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        obs::counter_add("stress.shared", 1);
                        obs::counter_add(&format!("stress.thread{t}"), i % 3);
                    }
                });
            }
        });
        let snap = obs::snapshot();
        assert_eq!(
            counter(&snap, "stress.shared"),
            Some(THREADS as u64 * PER_THREAD)
        );
        // Each private counter saw sum(i % 3 for i in 0..PER_THREAD).
        let expect: u64 = (0..PER_THREAD).map(|i| i % 3).sum();
        for t in 0..THREADS {
            assert_eq!(
                counter(&snap, &format!("stress.thread{t}")),
                Some(expect),
                "thread-{t} private counter"
            );
        }
    });
}

#[test]
fn concurrent_histograms_match_serial_totals() {
    with_enabled(|| {
        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        obs::record("stress.hist", t * PER_THREAD + i);
                    }
                });
            }
        });
        let snap = obs::snapshot();
        let m = snap
            .iter()
            .find(|m| matches!(m, obs::Metric::Histogram { name, .. } if name == "stress.hist"))
            .expect("histogram recorded");
        let obs::Metric::Histogram {
            count,
            sum,
            min,
            max,
            buckets,
            ..
        } = m
        else {
            unreachable!()
        };
        let n = THREADS as u64 * PER_THREAD;
        assert_eq!(*count, n);
        assert_eq!(*sum, n * (n - 1) / 2, "sum of 0..n");
        assert_eq!(*min, 0);
        assert_eq!(*max, n - 1);
        let bucket_total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, n, "every observation lands in a bucket");
    });
}

#[test]
fn concurrent_spans_aggregate_per_path() {
    with_enabled(|| {
        const SPANS: u64 = 500;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..SPANS {
                        let _outer = obs::span("stress_outer");
                        let _inner = obs::span("stress_inner");
                    }
                });
            }
        });
        let snap = obs::snapshot();
        let span_count = |want: &str| {
            snap.iter().find_map(|m| match m {
                obs::Metric::Span { path, count, .. } if path == want => Some(*count),
                _ => None,
            })
        };
        assert_eq!(span_count("stress_outer"), Some(THREADS as u64 * SPANS));
        assert_eq!(
            span_count("stress_outer/stress_inner"),
            Some(THREADS as u64 * SPANS)
        );
    });
}

#[test]
fn concurrent_attached_workers_fold_into_one_tree() {
    with_enabled(|| {
        const TASKS: usize = 64;
        let done = AtomicUsize::new(0);
        {
            let _root = obs::span("fanout");
            let parent = obs::current_span_path();
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let parent = parent.clone();
                    let done = &done;
                    s.spawn(move || {
                        let _g = obs::attach(parent);
                        while done.fetch_add(1, Relaxed) < TASKS {
                            let _w = obs::span("task");
                        }
                    });
                }
            });
        }
        let snap = obs::snapshot();
        let task_count = snap.iter().find_map(|m| match m {
            obs::Metric::Span { path, count, .. } if path == "fanout/task" => Some(*count),
            _ => None,
        });
        // Exactly TASKS spans ran (the fetch_add gate), all under the
        // spawning span's path even though none ran on its thread.
        assert_eq!(task_count, Some(TASKS as u64));
        assert!(
            !snap
                .iter()
                .any(|m| matches!(m, obs::Metric::Span { path, .. } if path == "task")),
            "no orphan worker-root spans"
        );
    });
}

#[test]
fn enable_toggle_races_do_not_corrupt_totals() {
    // Flip the enabled bit while writers hammer a counter: the final value
    // must never exceed the writes issued, and re-enabling keeps working.
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::set_enabled(true);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    obs::counter_add("stress.toggle", 1);
                }
            });
        }
        s.spawn(|| {
            for _ in 0..50 {
                obs::set_enabled(false);
                std::thread::yield_now();
                obs::set_enabled(true);
            }
        });
    });
    obs::set_enabled(true);
    let snap = obs::snapshot();
    let v = counter(&snap, "stress.toggle").unwrap_or(0);
    assert!(
        v <= 4 * PER_THREAD,
        "counter overshot: {v} > {}",
        4 * PER_THREAD
    );
    obs::set_enabled(false);
    obs::reset();
}
