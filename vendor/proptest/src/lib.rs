//! Vendored, offline stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` macro over `name in strategy` bindings, numeric
//! range strategies, `any::<T>()`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Each test runs `cases` deterministic iterations seeded per case index.
//! There is no shrinking: a failing case panics with the bound values in
//! the message instead, which is enough to reproduce (the harness is
//! deterministic).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A source of values for one `name in strategy` binding.
    pub trait Strategy {
        type Value: std::fmt::Debug;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + Clone + std::fmt::Debug,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: SampleUniform + Clone + std::fmt::Debug,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    /// Strategy returned by [`any`]: the full domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a whole-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite values only: proptest's default f64 domain is richer,
            // but no test here relies on NaN/inf inputs.
            rng.next_f64() * 2e6 - 1e6
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declares property tests. Each `fn name(x in strategy, ...) { body }`
/// expands to a `#[test]` running `cases` seeded iterations of the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            for case in 0..cfg.cases as u64 {
                // Per-case seed; mixed so adjacent cases diverge immediately.
                let mut __proptest_rng =
                    <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                        case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_5A5A_DEAD_BEEF,
                    );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                )+
                let __proptest_ctx = format!(
                    concat!("proptest case {} of ", stringify!($name), ":",
                        $(" ", stringify!($arg), "={:?}",)+),
                    case $(, $arg)+
                );
                // Bodies may `return Ok(())` to skip a case (proptest's
                // rejection convention), so the closure returns a Result.
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), ()> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                ));
                match result {
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("{}", __proptest_ctx);
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_bind_in_domain(n in 3usize..40, x in 0u64..500, f in 0.01f64..10.0) {
            prop_assert!((3..40).contains(&n));
            prop_assert!(x < 500);
            prop_assert!((0.01..10.0).contains(&f));
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            // Not a real property; just exercises the binding path.
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        // Two expansions with the same config see the same bound values.
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!((0usize..100).sample(&mut r1), (0usize..100).sample(&mut r2));
    }
}
