//! Vendored, offline stand-in for the subset of `criterion` this workspace
//! uses. It runs each benchmark closure for a short wall-clock window and
//! prints mean iteration time — no statistics, plots, or baselines — so
//! `cargo bench` works without registry access. The API mirrors criterion
//! 0.7: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    /// Mean seconds per iteration, filled in by `iter`.
    mean_s: f64,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, also used to size the batch.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let target = self.measure_for;
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let total = start.elapsed();
        self.iters = batch;
        self.mean_s = total.as_secs_f64() / batch as f64;
    }
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(name: &str, measure_for: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean_s: 0.0,
        iters: 0,
        measure_for,
    };
    f(&mut b);
    println!(
        "{name:<50} time: {:>12}   ({} iters)",
        human(b.mean_s),
        b.iters
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's timing window is
    /// fixed, so the sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.crit.measure_for = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.crit.measure_for, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.crit.measure_for, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: keeps `cargo bench` fast while still averaging
            // enough iterations for stable relative comparisons.
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup { name, crit: self }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.measure_for, &mut f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
/// Ignores harness CLI arguments (`--bench`, filters) that cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; there is
            // nothing to test in this stand-in harness, so exit quickly.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_counts() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("revised", 30).to_string(), "revised/30");
        assert_eq!(BenchmarkId::from_parameter(100).to_string(), "100");
    }
}
