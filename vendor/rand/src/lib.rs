//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses. The build environment has no registry access, so the
//! workspace points its `rand` requirement at this path.
//!
//! Provided surface: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float `Range`/`RangeInclusive`.
//! The generator is a deterministic SplitMix64-seeded xoshiro256** — seeded
//! streams are reproducible across runs and platforms, which is all the
//! workloads and tests rely on (they assert properties, not exact draws).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait RngExt: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be drawn uniformly from a bounded interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` if `inclusive` is false, `[lo, hi]` else.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty inclusive range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                // Width as u64 of the half-open span; an inclusive full-width
                // span would overflow, but no caller samples a full domain.
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                // Modulo bias is negligible for the small spans used here.
                let off = rng.next_u64() % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "empty float range");
        let u = rng.next_f64();
        // `u < 1` keeps the result strictly below `hi` and at least `lo`
        // (important for e.g. `f64::MIN_POSITIVE..1.0`, which feeds `ln()`).
        let v = lo + (hi - lo) * u;
        if v < lo {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_between(rng, lo as f64, hi as f64, inclusive) as f32
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64, mirroring
    /// how the real `StdRng` is seeded from a `u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(0..100);
            assert!((0..100).contains(&x));
            let y: usize = rng.random_range(3..=9);
            assert!((3..=9).contains(&y));
            let f = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let g = rng.random_range(-2.5..=4.0);
            assert!((-2.5..=4.0).contains(&g));
            let n = rng.random_range(-4i32..=4);
            assert!((-4..=4).contains(&n));
        }
    }

    #[test]
    fn all_values_reachable_on_small_spans() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
