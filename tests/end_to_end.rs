//! End-to-end integration tests across all crates: topology generation →
//! workload → instance → two-stage pipeline → LPDAR, plus RET and the
//! controller/simulator loop.

use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::pipeline::max_throughput_pipeline;
use wavesched::core::ret::{solve_ret, RetConfig};
use wavesched::net::{abilene20, waxman_network, PathSet, WaxmanConfig};
use wavesched::sim::{run_simulation, SimConfig};
use wavesched::workload::{ArrivalModel, WorkloadConfig, WorkloadGenerator};

fn waxman_small(w: u32, seed: u64) -> wavesched::net::Graph {
    waxman_network(&WaxmanConfig {
        nodes: 30,
        link_pairs: 60,
        wavelengths: w,
        alpha: 0.15,
        seed,
    })
}

#[test]
fn pipeline_on_random_network() {
    let w = 2;
    let g = waxman_small(w, 3);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 40,
        seed: 17,
        window: (4.0, 10.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(w);
    let mut ps = PathSet::new(cfg.paths_per_job);
    let inst = Instance::build(&g, &jobs, &cfg, &mut ps);

    let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
    assert!(r.z_star > 0.0);
    // Ordering of the three solutions.
    assert!(r.lpd_throughput <= r.lpdar_throughput + 1e-9);
    // Feasibility and integrality of the heuristic outputs.
    assert!(r.lpd.is_integral(1e-9));
    assert!(r.lpdar.is_integral(1e-9));
    assert!(r.lp.max_capacity_violation(&inst) < 1e-6);
    assert!(r.lpd.max_capacity_violation(&inst) < 1e-9);
    assert!(r.lpdar.max_capacity_violation(&inst) < 1e-9);
    // Fairness floor honored by the fractional stage-2 solution.
    for i in 0..inst.num_jobs() {
        assert!(
            r.lp.throughput(&inst, i) >= 0.9 * r.z_star - 1e-5,
            "job {i} below fairness floor"
        );
    }
}

#[test]
fn z_star_invariant_under_wavelength_split() {
    // Fig. 1's sweep holds link capacity constant: splitting 20 Gbps into
    // more wavelengths scales demands and capacities together, so the
    // fractional Z* must not change.
    let jobs_cfg = WorkloadConfig {
        num_jobs: 25,
        seed: 5,
        window: (4.0, 10.0),
        ..Default::default()
    };
    let mut z_values = Vec::new();
    for &w in &[2u32, 8, 32] {
        let g = waxman_small(w, 9);
        let jobs = WorkloadGenerator::new(jobs_cfg.clone()).generate(&g);
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
        let r = wavesched::core::stage1::solve_stage1(&inst).expect("stage1");
        z_values.push(r.z_star);
    }
    for w in z_values.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-4 * w[0].abs().max(1.0),
            "Z* changed under capacity-constant wavelength split: {z_values:?}"
        );
    }
}

#[test]
fn ret_on_abilene() {
    let w = 2;
    let (g, _) = abilene20(w);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 15,
        seed: 23,
        size_gb: (50.0, 100.0),
        window: (3.0, 6.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(w);
    let r = solve_ret(&g, &jobs, &cfg, &RetConfig::default())
        .expect("solver ok")
        .expect("extension exists");
    assert_eq!(r.lpdar_fraction_finished(), 1.0);
    assert!(r.lpd_fraction_finished() <= r.lpdar_fraction_finished());
    assert!(r.b_final >= r.b_lp);
    assert!(r.lpdar.max_capacity_violation(&r.instance) < 1e-9);
    // Average end times exist and LPDAR's is not absurdly above LP's.
    let lp_t = r.lp_avg_end_time().unwrap();
    let heur_t = r.lpdar_avg_end_time().unwrap();
    assert!(
        heur_t >= lp_t - 1e-9,
        "integrality cannot speed things up on average"
    );
}

#[test]
fn simulation_closes_the_loop() {
    let (g, _) = abilene20(4);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 12,
        seed: 31,
        size_gb: (10.0, 80.0),
        arrival: ArrivalModel::Poisson { rate: 1.0 },
        window: (8.0, 16.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = SimConfig::paper(4);
    let report = run_simulation(&g, &jobs, &cfg).expect("simulation");
    assert!(report.invocations >= 1);
    assert!(report.volume_moved > 0.0);
    assert!(report.volume_moved <= report.volume_requested + 1e-6);
    assert!(report.completion_rate() > 0.5);
    // Every job has a definite outcome entry.
    assert_eq!(report.outcomes.len(), jobs.len());
}

#[test]
fn multi_seed_determinism() {
    // Same seeds end to end => byte-identical results.
    let run = || {
        let g = waxman_small(4, 77);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 20,
            seed: 88,
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(4);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
        let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
        (r.z_star, r.lp_throughput, r.lpdar.x.clone())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0.to_bits(), b.0.to_bits());
    assert_eq!(a.1.to_bits(), b.1.to_bits());
    assert_eq!(a.2, b.2);
}
