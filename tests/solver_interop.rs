//! Interop paths around the solver: the scheduler's Stage-2 formulation
//! survives an MPS round trip and a presolve pass with the optimum intact,
//! and the CLI-facing trace format pins workloads exactly.

use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::stage1::solve_stage1;
use wavesched::lp::{
    parse_mps, presolve, solve, write_mps, Objective, PresolveOutcome, Problem, Status,
};
use wavesched::net::{abilene14, PathSet};
use wavesched::workload::{parse_trace, write_trace, WorkloadConfig, WorkloadGenerator};

/// Builds the Stage-2 LP by hand for an instance (mirrors
/// `core::stage2` so the interop test is independent of its internals).
fn stage2_lp(inst: &Instance, z_star: f64, alpha: f64) -> Problem {
    let total = inst.total_demand();
    let mut p = Problem::new(Objective::Maximize);
    let mut cols = Vec::new();
    for (_, job, path, slice) in inst.vars.iter() {
        let bn = inst.paths[job][path].bottleneck_wavelengths(&inst.graph) as f64;
        cols.push(p.add_col(0.0, bn, inst.grid.len_of(slice) / total));
    }
    for i in 0..inst.num_jobs() {
        let coeffs: Vec<_> = inst
            .vars
            .job_range(i)
            .map(|v| {
                let (_, _, s) = inst.vars.triple(v);
                (cols[v], inst.grid.len_of(s))
            })
            .collect();
        p.add_row(
            (1.0 - alpha) * z_star * inst.demands[i],
            f64::INFINITY,
            &coeffs,
        );
    }
    let mut keys: Vec<_> = inst.capacity_groups.keys().collect();
    keys.sort();
    for key in keys {
        let cap = inst.graph.wavelengths(wavesched::net::EdgeId(key.0)) as f64;
        let coeffs: Vec<_> = inst.capacity_groups[key]
            .iter()
            .map(|&v| (cols[v as usize], 1.0))
            .collect();
        p.add_row(f64::NEG_INFINITY, cap, &coeffs);
    }
    p
}

fn small_instance() -> Instance {
    let (g, _) = abilene14(2);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 8,
        seed: 13,
        window: (3.0, 8.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(2);
    let mut ps = PathSet::new(cfg.paths_per_job);
    Instance::build(&g, &jobs, &cfg, &mut ps)
}

#[test]
fn stage2_survives_mps_roundtrip() {
    let inst = small_instance();
    let z = solve_stage1(&inst).unwrap().z_star;
    let p = stage2_lp(&inst, z, 0.1);
    let direct = solve(&p).unwrap();
    assert_eq!(direct.status, Status::Optimal);

    let text = write_mps(&p, "STAGE2");
    let parsed = parse_mps(&text).unwrap();
    assert_eq!(parsed.problem.num_cols(), p.num_cols());
    assert_eq!(parsed.problem.num_rows(), p.num_rows());
    let re = solve(&parsed.problem).unwrap();
    assert_eq!(re.status, Status::Optimal);
    // MPS encodes the equivalent minimization: objective negates.
    assert!(
        (re.objective + direct.objective).abs() <= 1e-6 * (1.0 + direct.objective.abs()),
        "direct {} vs roundtrip {}",
        direct.objective,
        re.objective
    );
}

#[test]
fn stage2_survives_presolve() {
    let inst = small_instance();
    let z = solve_stage1(&inst).unwrap().z_star;
    let p = stage2_lp(&inst, z, 0.1);
    let direct = solve(&p).unwrap();

    match presolve(&p) {
        PresolveOutcome::Reduced(r) => {
            let s = solve(&r.problem).unwrap();
            assert_eq!(s.status, Status::Optimal);
            assert!(
                (s.objective - direct.objective).abs() <= 1e-6 * (1.0 + direct.objective.abs()),
                "direct {} vs presolved {}",
                direct.objective,
                s.objective
            );
            let x = r.postsolve(&s.x);
            assert!(p.max_violation(&x) <= 1e-6);
        }
        other => panic!("expected a reduction, got {other:?}"),
    }
}

#[test]
fn trace_pins_workloads_across_networks() {
    let (g, _) = abilene14(4);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 30,
        seed: 99,
        ..Default::default()
    })
    .generate(&g);
    let text = write_trace(&jobs);
    let back = parse_trace(&text, &g).unwrap();
    assert_eq!(jobs, back);
    // Scheduling the parsed trace gives bit-identical Z*.
    let cfg = InstanceConfig::paper(4);
    let mut ps1 = PathSet::new(cfg.paths_per_job);
    let mut ps2 = PathSet::new(cfg.paths_per_job);
    let a = solve_stage1(&Instance::build(&g, &jobs, &cfg, &mut ps1)).unwrap();
    let b = solve_stage1(&Instance::build(&g, &back, &cfg, &mut ps2)).unwrap();
    assert_eq!(a.z_star.to_bits(), b.z_star.to_bits());
}
