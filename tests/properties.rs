//! Property-based tests of the scheduling invariants on randomized
//! instances (proptest drives the instance shape; the workload and
//! topology generators provide the determinism under each seed).

use proptest::prelude::*;
use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::lpdar::{adjust_rates, adjust_rates_capped, lpdar, truncate, AdjustOrder};
use wavesched::core::stage1::solve_stage1;
use wavesched::core::stage2::solve_stage2;
use wavesched::net::{waxman_network, PathSet, WaxmanConfig};
use wavesched::workload::{WorkloadConfig, WorkloadGenerator};

/// A random small instance driven by proptest parameters.
fn build_instance(net_seed: u64, job_seed: u64, n_jobs: usize, w: u32, paths: usize) -> Instance {
    let g = waxman_network(&WaxmanConfig {
        nodes: 15,
        link_pairs: 25,
        wavelengths: w,
        alpha: 0.15,
        seed: net_seed,
    });
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: n_jobs,
        seed: job_seed,
        size_gb: (10.0, 150.0),
        window: (2.0, 8.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig {
        paths_per_job: paths,
        ..InstanceConfig::paper(w)
    };
    let mut ps = PathSet::new(paths);
    Instance::build(&g, &jobs, &cfg, &mut ps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full heuristic chain preserves feasibility and the paper's
    /// throughput ordering LPD <= LPDAR, with LP as an upper bound for LPD.
    #[test]
    fn heuristic_chain_invariants(
        net_seed in 0u64..500,
        job_seed in 0u64..500,
        n_jobs in 3usize..12,
        w in 2u32..9,
    ) {
        let inst = build_instance(net_seed, job_seed, n_jobs, w, 3);
        let s1 = solve_stage1(&inst).expect("stage1");
        prop_assert!(s1.z_star >= -1e-9);
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).expect("stage2");
        let lp = s2.schedule;

        let lpd = truncate(&inst, &lp);
        prop_assert!(lpd.is_integral(1e-9));
        prop_assert!(lpd.max_capacity_violation(&inst) < 1e-9);
        // Truncation never increases any assignment.
        for (a, b) in lpd.x.iter().zip(&lp.x) {
            prop_assert!(*a <= b + 1e-6);
        }

        let adj = adjust_rates(&inst, &lpd, AdjustOrder::Paper);
        prop_assert!(adj.is_integral(1e-9));
        prop_assert!(adj.max_capacity_violation(&inst) < 1e-9);
        // Adjustment never decreases any assignment.
        for (a, b) in adj.x.iter().zip(&lpd.x) {
            prop_assert!(*a >= b - 1e-9);
        }
        prop_assert!(lpd.weighted_throughput(&inst) <= adj.weighted_throughput(&inst) + 1e-9);
        prop_assert!(lpd.weighted_throughput(&inst) <= lp.weighted_throughput(&inst) + 1e-6);
    }

    /// The capped adjustment never overshoots demands it could avoid
    /// overshooting, never violates capacity, and always delivers at least
    /// as much per job as the plain truncation.
    #[test]
    fn capped_adjustment_invariants(
        net_seed in 0u64..500,
        job_seed in 0u64..500,
        n_jobs in 3usize..12,
    ) {
        let inst = build_instance(net_seed, job_seed, n_jobs, 2, 3);
        let s1 = solve_stage1(&inst).expect("stage1");
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).expect("stage2");
        let lpd = truncate(&inst, &s2.schedule);
        let capped = adjust_rates_capped(&inst, &lpd, AdjustOrder::Paper);
        prop_assert!(capped.is_integral(1e-9));
        prop_assert!(capped.max_capacity_violation(&inst) < 1e-9);
        for i in 0..inst.num_jobs() {
            let got = capped.transferred(&inst, i);
            let base = lpd.transferred(&inst, i);
            prop_assert!(got >= base - 1e-9);
            // Overshoot is bounded by one slice-length: the final grant
            // takes at most ceil(deficit / LEN) wavelengths, so it exceeds
            // the deficit by less than LEN (unless the base already
            // overshot, hence the max with `base`).
            let over = got - inst.demands[i].max(base);
            let max_len = (0..inst.grid.num_slices())
                .map(|j| inst.grid.len_of(j))
                .fold(0.0f64, f64::max);
            prop_assert!(over <= max_len + 1e-9, "job {i} overshot by {over}");
        }
    }

    /// Trimming an over-delivering schedule keeps completion and
    /// integrality and never increases any assignment.
    #[test]
    fn trim_to_demand_properties(
        net_seed in 0u64..500,
        job_seed in 0u64..500,
        n_jobs in 3usize..10,
    ) {
        let inst = build_instance(net_seed, job_seed, n_jobs, 4, 3);
        let s1 = solve_stage1(&inst).expect("stage1");
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).expect("stage2");
        let full = lpdar(&inst, &s2.schedule, AdjustOrder::Paper);
        let trimmed = full.trim_to_demand(&inst);
        prop_assert!(trimmed.is_integral(1e-9));
        prop_assert!(trimmed.max_capacity_violation(&inst) < 1e-9);
        for (t, f) in trimmed.x.iter().zip(&full.x) {
            prop_assert!(*t <= f + 1e-12);
            prop_assert!(*t >= -1e-12);
        }
        for i in 0..inst.num_jobs() {
            // Completion status is preserved.
            if full.completes(&inst, i, 1e-6) {
                prop_assert!(trimmed.completes(&inst, i, 1e-6), "job {i} lost completion");
            }
        }
    }

    /// Stage-1 Z* does not increase when jobs are added (monotonicity that
    /// the admission binary search relies on).
    #[test]
    fn z_star_monotone_in_jobs(
        net_seed in 0u64..300,
        job_seed in 0u64..300,
    ) {
        let inst_small = build_instance(net_seed, job_seed, 4, 4, 3);
        // Same generator stream: the first 4 jobs of the 8-job workload are
        // exactly the 4-job workload.
        let inst_large = build_instance(net_seed, job_seed, 8, 4, 3);
        let z_small = solve_stage1(&inst_small).expect("s1").z_star;
        let z_large = solve_stage1(&inst_large).expect("s1").z_star;
        prop_assert!(z_large <= z_small + 1e-6,
            "adding jobs increased Z*: {z_small} -> {z_large}");
    }
}
