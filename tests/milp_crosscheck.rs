//! Cross-check LPDAR against the exact integer optimum on instances small
//! enough for branch-and-bound — the comparison the paper could not run.
//!
//! Sandwich property per instance, in weighted throughput (eq. 7):
//! `LPD <= LPDAR <= unconstrained-ILP optimum <= LP-without-fairness`.
//!
//! Note the upper bound deliberately drops the fairness rows: LPDAR does
//! *not* guarantee eq. 9 — truncation can leave a job below the
//! `(1-alpha) Z*` floor and the greedy adjustment may not restore it — so
//! LPDAR can legitimately exceed the fairness-constrained ILP optimum.
//! The capacity-and-bounds-only ILP is a true upper bound for every
//! integral schedule LPD/LPDAR can emit.

use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::lpdar::{lpdar, truncate, AdjustOrder};
use wavesched::core::stage1::solve_stage1;
use wavesched::core::stage2::solve_stage2;
use wavesched::lp::{solve_milp, MilpConfig, MilpStatus, Objective, Problem};
use wavesched::net::{Graph, PathSet};
use wavesched::workload::{WorkloadConfig, WorkloadGenerator};

/// Builds the Stage-2 integer program for a small instance. Pass
/// `fairness: None` for the capacity-and-bounds-only relaxation (a valid
/// upper bound on LPD/LPDAR), or `Some((z_star, alpha))` for the paper's
/// full Stage-2 IP.
fn stage2_milp(inst: &Instance, fairness: Option<(f64, f64)>) -> Problem {
    let total = inst.total_demand();
    let mut p = Problem::new(Objective::Maximize);
    let mut cols = Vec::new();
    for (_, job, path, slice) in inst.vars.iter() {
        let bn = inst.paths[job][path].bottleneck_wavelengths(&inst.graph) as f64;
        cols.push(p.add_int_col(0.0, bn, inst.grid.len_of(slice) / total));
    }
    if let Some((z_star, alpha)) = fairness {
        for i in 0..inst.num_jobs() {
            let coeffs: Vec<_> = inst
                .vars
                .job_range(i)
                .map(|v| {
                    let (_, _, s) = inst.vars.triple(v);
                    (cols[v], inst.grid.len_of(s))
                })
                .collect();
            p.add_row(
                (1.0 - alpha) * z_star * inst.demands[i],
                f64::INFINITY,
                &coeffs,
            );
        }
    }
    let mut keys: Vec<_> = inst.capacity_groups.keys().collect();
    keys.sort();
    for key in keys {
        let cap = inst.graph.wavelengths(wavesched::net::EdgeId(key.0)) as f64;
        let coeffs: Vec<_> = inst.capacity_groups[key]
            .iter()
            .map(|&v| (cols[v as usize], 1.0))
            .collect();
        p.add_row(f64::NEG_INFINITY, cap, &coeffs);
    }
    p
}

fn tiny_instance(seed: u64) -> Instance {
    // 4-node ring, 2 wavelengths, 3 jobs with 2-3 slice windows.
    let mut g = Graph::new();
    let ns = g.add_nodes(4);
    for i in 0..4 {
        g.add_link_pair(ns[i], ns[(i + 1) % 4], 2);
    }
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 3,
        seed,
        size_gb: (30.0, 120.0),
        window: (2.0, 3.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig {
        paths_per_job: 2,
        ..InstanceConfig::paper(2)
    };
    let mut ps = PathSet::new(2);
    Instance::build(&g, &jobs, &cfg, &mut ps)
}

#[test]
fn sandwich_property_holds() {
    let mut checked = 0;
    for seed in 0..8u64 {
        let inst = tiny_instance(seed);
        let s1 = solve_stage1(&inst).expect("stage1");
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).expect("stage2");
        let lp_obj = s2.schedule.weighted_throughput(&inst);
        let lpd_obj = truncate(&inst, &s2.schedule).weighted_throughput(&inst);
        let heur_obj = lpdar(&inst, &s2.schedule, AdjustOrder::Paper).weighted_throughput(&inst);

        let milp = stage2_milp(&inst, None);
        let sol = solve_milp(&milp, &MilpConfig::default()).expect("milp");
        if sol.status != MilpStatus::Optimal {
            continue; // node-limited instance: skip, but keep counting others
        }
        let ilp_obj = sol.objective;
        checked += 1;

        assert!(lpd_obj <= heur_obj + 1e-9, "seed {seed}: LPD > LPDAR");
        assert!(
            heur_obj <= ilp_obj + 1e-6,
            "seed {seed}: LPDAR {heur_obj} beat the unconstrained ILP {ilp_obj}?!"
        );
        // The fairness-constrained ILP can only be worse (more constraints).
        let fair = solve_milp(
            &stage2_milp(&inst, Some((s1.z_star, 0.1))),
            &MilpConfig::default(),
        )
        .expect("milp");
        if fair.status == MilpStatus::Optimal {
            assert!(
                fair.objective <= ilp_obj + 1e-6,
                "seed {seed}: fairness ILP above unconstrained ILP"
            );
        }
        let _ = lp_obj;
        // LPDAR should be close to exact on these tiny instances.
        assert!(
            heur_obj >= 0.6 * ilp_obj,
            "seed {seed}: LPDAR only reached {} of ILP",
            heur_obj / ilp_obj
        );
    }
    assert!(
        checked >= 5,
        "too few instances solved to optimality: {checked}"
    );
}

#[test]
fn milp_respects_fairness_floor() {
    let inst = tiny_instance(3);
    let s1 = solve_stage1(&inst).expect("stage1");
    let milp = stage2_milp(&inst, Some((s1.z_star, 0.1)));
    let sol = solve_milp(&milp, &MilpConfig::default()).expect("milp");
    if sol.status == MilpStatus::Optimal {
        // Reconstruct per-job transfers from the MILP point.
        for i in 0..inst.num_jobs() {
            let got: f64 = inst
                .vars
                .job_range(i)
                .map(|v| {
                    let (_, _, s) = inst.vars.triple(v);
                    sol.x[v] * inst.grid.len_of(s)
                })
                .sum();
            assert!(
                got + 1e-6 >= 0.9 * s1.z_star * inst.demands[i],
                "job {i} below fairness floor in exact solution"
            );
        }
    }
}
