//! Observability-layer integration tests.
//!
//! These live in their own integration-test binary on purpose: they toggle
//! the process-wide `wavesched::obs` registry, and a dedicated binary is a
//! dedicated process, so no other test can race the enabled flag.

use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::pipeline::max_throughput_pipeline;
use wavesched::net::{waxman_network, PathSet, WaxmanConfig};
use wavesched::obs;
use wavesched::workload::{WorkloadConfig, WorkloadGenerator};

/// The obs registry is process-wide, so the two tests below must not
/// interleave even though the harness runs tests on parallel threads.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn run_small_pipeline() {
    let w = 2;
    let g = waxman_network(&WaxmanConfig {
        nodes: 20,
        link_pairs: 40,
        wavelengths: w,
        alpha: 0.15,
        seed: 11,
    });
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 15,
        seed: 5,
        window: (4.0, 10.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(w);
    let mut ps = PathSet::new(cfg.paths_per_job);
    let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
    max_throughput_pipeline(&inst, 0.1).expect("pipeline solves");
}

/// The whole instrumentation layer must be a single cold branch when
/// disabled: a full pipeline run may not touch the registry at all.
/// `obs::recordings()` counts every recorded event and survives `reset()`,
/// so a zero delta proves the disabled path never crossed the branch.
#[test]
fn instrumentation_is_inert_when_disabled() {
    let _guard = OBS_LOCK.lock().unwrap();
    assert!(!obs::enabled(), "obs must start disabled");
    let before = obs::recordings();
    run_small_pipeline();
    let after = obs::recordings();
    assert_eq!(
        after - before,
        0,
        "disabled obs layer recorded {} events during a pipeline run",
        after - before
    );
    assert!(obs::snapshot().is_empty(), "registry must stay empty");
}

/// `--report` output must parse back to exactly the snapshot it was written
/// from: enable obs, run the pipeline, then round-trip through the
/// JSON-lines writer/parser.
#[test]
fn report_schema_round_trips_from_live_run() {
    // Either order works under OBS_LOCK: this test resets the registry on
    // exit, and the disabled-path test asserts on a recordings() *delta*.
    let _guard = OBS_LOCK.lock().unwrap();
    obs::set_enabled(true);
    run_small_pipeline();
    obs::set_enabled(false);

    let snap = obs::snapshot();
    assert!(
        !snap.is_empty(),
        "an instrumented pipeline run must produce metrics"
    );
    // A real run exercises all three metric kinds.
    let has = |f: fn(&obs::Metric) -> bool| snap.iter().any(f);
    assert!(has(|m| matches!(m, obs::Metric::Counter { .. })));
    assert!(has(|m| matches!(m, obs::Metric::Histogram { .. })));
    assert!(has(|m| matches!(m, obs::Metric::Span { .. })));
    // Key instruments from each layer are present.
    let counter_names: Vec<&str> = snap
        .iter()
        .filter_map(|m| match m {
            obs::Metric::Counter { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert!(counter_names.contains(&"lp.solves"));
    assert!(counter_names.contains(&"lp.iterations"));
    let span_paths: Vec<&str> = snap
        .iter()
        .filter_map(|m| match m {
            obs::Metric::Span { path, .. } => Some(path.as_str()),
            _ => None,
        })
        .collect();
    assert!(span_paths.contains(&"pipeline"));
    assert!(span_paths.iter().any(|p| p.starts_with("pipeline/")));

    let text = obs::to_json_lines(&snap);
    let parsed = obs::parse_json_lines(&text).expect("report parses back");
    assert_eq!(parsed, snap, "JSON-lines round trip must be lossless");

    obs::reset();
    assert!(obs::snapshot().is_empty());
}
