//! The periodic controller in action: Poisson job arrivals on Abilene, the
//! controller re-optimizes every τ = 2 slices, transfers execute slice by
//! slice in the discrete-event simulator. The workload is sized to
//! overload the network so the three overload policies diverge visibly.
//!
//! One subtlety this surfaces: under the `Reject` policy a small number of
//! *admitted* jobs can still expire, because admission guarantees
//! `Z* >= 1` but Stage 2 only enforces the fairness floor
//! `(1 - alpha) Z*` per job (alpha = 0.1 here, as in the paper). The
//! `ablation_alpha` bench quantifies that tension.
//!
//! ```text
//! cargo run --release --example live_controller
//! ```

use wavesched::core::controller::OverloadPolicy;
use wavesched::net::abilene14;
use wavesched::sim::{run_simulation, JobOutcome, SimConfig};
use wavesched::workload::{ArrivalModel, WorkloadConfig, WorkloadGenerator};

fn main() {
    let (graph, _) = abilene14(2);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 30,
        seed: 42,
        size_gb: (300.0, 600.0),
        arrival: ArrivalModel::Poisson { rate: 3.0 },
        window: (3.0, 6.0),
        ..Default::default()
    })
    .generate(&graph);

    for policy in [
        OverloadPolicy::Reject,
        OverloadPolicy::ShrinkDemands,
        OverloadPolicy::ExtendDeadlines,
    ] {
        let mut cfg = SimConfig::paper(2);
        cfg.controller.tau = 2;
        cfg.controller.policy = policy;
        let report = run_simulation(&graph, &jobs, &cfg).expect("simulation");

        println!("== policy {policy:?} ==");
        println!(
            "  {} slices simulated, {} controller invocations",
            report.slices, report.invocations
        );
        println!(
            "  completed {:.0}%  on-time {:.0}%  rejected {:.0}%  expired {:.0}%",
            report.completion_rate() * 100.0,
            report.on_time_rate() * 100.0,
            report.rejection_rate() * 100.0,
            report.expiry_rate() * 100.0
        );
        println!(
            "  goodput {:.0}% of requested volume, mean utilization {:.1}%",
            report.goodput() * 100.0,
            report.mean_utilization * 100.0
        );
        if let Some(t) = report.average_end_time() {
            println!("  average end time of completed jobs: {t:.1} slices");
        }
        let late: Vec<_> = report
            .outcomes
            .iter()
            .filter(|(_, o)| matches!(o, JobOutcome::Completed { on_time: false, .. }))
            .map(|(id, _)| *id)
            .collect();
        if !late.is_empty() {
            println!("  late completions: {late:?}");
        }
        println!();
    }
}
