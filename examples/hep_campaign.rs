//! A high-energy-physics data campaign on an overloaded research network —
//! the negotiation scenario that motivates the paper's two overload
//! actions.
//!
//! A tier-0 site must fan experiment data out to tier-1 sites with tight
//! deadlines; the network cannot satisfy everything (`Z* < 1`). The
//! example compares what each negotiation outcome delivers:
//!
//! * **Shrink demands** (Section II-B): every job keeps its deadline but
//!   only `Z_i` of its data arrives.
//! * **Extend deadlines** (Section II-C, RET): every byte arrives, all
//!   deadlines slip by the same factor `(1+b)`.
//!
//! ```text
//! cargo run --release --example hep_campaign
//! ```

use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::pipeline::max_throughput_pipeline;
use wavesched::core::ret::{solve_ret, RetConfig};
use wavesched::net::{waxman_network, PathSet, WaxmanConfig};
use wavesched::workload::{Job, JobId};

fn main() {
    // A 40-node research backbone, 80 fiber pairs, 2 wavelengths per link.
    let net_cfg = WaxmanConfig {
        nodes: 40,
        link_pairs: 80,
        wavelengths: 2,
        alpha: 0.15,
        seed: 11,
    };
    let graph = waxman_network(&net_cfg);
    let nodes: Vec<_> = graph.nodes().collect();

    // Tier-0 at node 0 pushes large datasets to six tier-1 sites, all due
    // within 6 slices (~6 minutes of 60 s slices at this scale).
    let tier0 = nodes[0];
    let tier1 = [5usize, 11, 17, 23, 29, 35];
    let jobs: Vec<Job> = tier1
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            Job::new(
                JobId(i as u32),
                0.0,
                tier0,
                nodes[t],
                400.0 + 100.0 * i as f64, // 400-900 GB datasets
                0.0,
                6.0,
            )
        })
        .collect();

    let cfg = InstanceConfig::paper(2); // 10 Gbps per wavelength
    let mut paths = PathSet::new(cfg.paths_per_job);
    let inst = Instance::build(&graph, &jobs, &cfg, &mut paths);

    println!(
        "== campaign: {} transfers, {:.1} demand units total ==",
        jobs.len(),
        inst.total_demand()
    );

    // Option A: keep deadlines, shrink demands.
    let pipe = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
    println!(
        "\n-- option A: end-time guarantee, demands shrink (Z* = {:.3}) --",
        pipe.z_star
    );
    if pipe.z_star < 1.0 {
        println!("network is OVERLOADED: only Z* of each dataset fits by deadline");
    }
    for (i, job) in inst.jobs.iter().enumerate() {
        let zi = pipe.lpdar.throughput(&inst, i).min(1.0);
        println!(
            "  {}: {:.0} GB requested, {:.0} GB deliverable by slice {} ({:.0}%)",
            job.id,
            job.size_gb,
            job.size_gb * zi,
            job.end,
            zi * 100.0
        );
    }

    // Option B: deliver everything, extend deadlines minimally.
    let ret = solve_ret(&graph, &jobs, &cfg, &RetConfig::default())
        .expect("ret solver")
        .expect("an extension exists");
    println!(
        "\n-- option B: full delivery, deadlines extended by (1+b), b = {:.2} --",
        ret.b_final
    );
    for (i, job) in ret.instance.jobs.iter().enumerate() {
        let done = ret
            .lpdar
            .completion_time(&ret.instance, i, 1e-6)
            .expect("RET completes everything");
        println!(
            "  {}: full {:.0} GB done at slice {:.0} (deadline was {:.0}, now {:.0})",
            job.id, job.size_gb, done, jobs[i].end, job.end
        );
    }
    println!(
        "\naverage end time: LP {:.2} vs LPDAR {:.2} slices",
        ret.lp_avg_end_time().unwrap(),
        ret.lpdar_avg_end_time().unwrap()
    );
}
