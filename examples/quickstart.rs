//! Quickstart: schedule a handful of bulk transfers on the Abilene
//! backbone with the paper's two-stage pipeline and print the resulting
//! integral wavelength schedule.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::lpdar::{adjust_rates_capped, truncate, AdjustOrder};
use wavesched::core::stage1::solve_stage1;
use wavesched::core::stage2::solve_stage2;
use wavesched::net::{abilene14, PathSet};
use wavesched::workload::{Job, JobId};

fn main() {
    // The canonical Abilene backbone with 4 wavelengths per 20 Gbps link.
    let (graph, nodes) = abilene14(4);
    let seattle = nodes[0];
    let sunnyvale = nodes[1];
    let atlanta = nodes[8];
    let new_york = nodes[10];

    // Three bulk transfers: (id, arrival, src, dst, size GB, start, end).
    // Times are in slices of 60 s.
    let jobs = vec![
        Job::new(JobId(0), 0.0, seattle, new_york, 300.0, 0.0, 10.0),
        Job::new(JobId(1), 0.0, sunnyvale, atlanta, 150.0, 0.0, 8.0),
        Job::new(JobId(2), 0.0, new_york, seattle, 450.0, 2.0, 12.0),
    ];

    let cfg = InstanceConfig::paper(4); // 4 paths/job, 5 Gbps per wavelength
    let mut paths = PathSet::new(cfg.paths_per_job);
    let inst = Instance::build(&graph, &jobs, &cfg, &mut paths);

    // Stage 1: how loaded is the network? Z* >= 1 means every deadline is
    // satisfiable; Z* < 1 means demands must shrink by that factor.
    let s1 = solve_stage1(&inst).expect("stage 1");
    println!("maximum concurrent throughput Z* = {:.3}", s1.z_star);

    // Stage 2 (fractional) + LPDAR, capped at each job's demand so the
    // printed schedule is the one an operator would actually provision.
    let s2 = solve_stage2(&inst, s1.z_star, 0.1).expect("stage 2");
    let lpd = truncate(&inst, &s2.schedule);
    let schedule = adjust_rates_capped(&inst, &lpd, AdjustOrder::Paper)
        // Remark 2: release wavelengths beyond each job's demand.
        .trim_to_demand(&inst);
    println!();

    for (i, job) in inst.jobs.iter().enumerate() {
        println!(
            "{}: {} -> {} ({:.0} GB, {:.1} demand units, window [{}, {}])",
            job.id,
            inst.graph.node_name(job.src),
            inst.graph.node_name(job.dst),
            job.size_gb,
            inst.demands[i],
            job.start,
            job.end,
        );
        for p in 0..inst.vars.paths_of(i) {
            let hops: Vec<&str> = inst.paths[i][p]
                .nodes(&inst.graph)
                .iter()
                .map(|&n| inst.graph.node_name(n))
                .collect();
            let mut any = false;
            let mut line = String::new();
            for slice in inst.vars.window(i) {
                let x = schedule.x[inst.vars.var(i, p, slice)];
                if x > 0.0 {
                    any = true;
                    line.push_str(&format!(" slice {slice}: {x:.0}λ"));
                }
            }
            if any {
                println!("  via {}:{}", hops.join("-"), line);
            }
        }
        println!(
            "  delivered {:.2} of {:.2} units (Z_i = {:.2})",
            schedule.transferred(&inst, i),
            inst.demands[i],
            schedule.throughput(&inst, i)
        );
    }
}
