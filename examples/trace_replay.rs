//! Replay a pinned workload trace and inspect the plan like an operator:
//! load jobs from CSV, schedule them on the ESnet-style backbone, print
//! the per-job wavelength timeline and the hottest links, and export a
//! load-colored Graphviz rendering.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::pipeline::max_throughput_pipeline;
use wavesched::core::report::{job_timeline, link_utilization};
use wavesched::net::{esnet, to_dot_with_load, PathSet};
use wavesched::workload::{parse_trace, write_trace, Job, JobId};

fn main() {
    let (graph, nodes) = esnet(2);

    // Normally this trace would come from a file or a request log; here we
    // build it, serialize it, and parse it back to demonstrate the format.
    let jobs = vec![
        // Brookhaven pushes detector data west.
        Job::new(JobId(0), 0.0, nodes[14], nodes[1], 600.0, 0.0, 8.0),
        // Chicago exchange fans out to both coasts.
        Job::new(JobId(1), 0.0, nodes[8], nodes[0], 450.0, 1.0, 9.0),
        Job::new(JobId(2), 0.0, nodes[8], nodes[10], 300.0, 0.0, 6.0),
        // A southern-route bulk replication.
        Job::new(JobId(3), 0.0, nodes[2], nodes[11], 750.0, 2.0, 12.0),
    ];
    let csv = write_trace(&jobs);
    println!("--- trace ---\n{csv}");
    let jobs = parse_trace(&csv, &graph).expect("valid trace");

    let cfg = InstanceConfig::paper(2); // 10 Gbps per wavelength, 60 s slices
    let mut paths = PathSet::new(cfg.paths_per_job);
    let inst = Instance::build(&graph, &jobs, &cfg, &mut paths);

    let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
    let plan = r.lpdar.trim_to_demand(&inst);

    println!("Z* = {:.2} (>= 1 means every deadline holds)\n", r.z_star);
    println!("--- wavelength timeline ---");
    print!("{}", job_timeline(&inst, &plan));
    println!("\n--- hottest links ---");
    print!("{}", link_utilization(&inst, &plan, 8));

    // Peak per-link load across slices, for the DOT rendering.
    let peak = |e: wavesched::net::EdgeId| -> Option<f64> {
        let cap = inst.graph.wavelengths(e) as f64;
        let max_used = (0..inst.grid.num_slices())
            .map(|s| {
                inst.capacity_groups
                    .get(&(e.0, s as u32))
                    .map(|vars| vars.iter().map(|&v| plan.x[v as usize]).sum::<f64>())
                    .unwrap_or(0.0)
            })
            .fold(0.0f64, f64::max);
        Some(max_used / cap)
    };
    let dot = to_dot_with_load(&graph, peak);
    std::fs::write("esnet_load.dot", &dot).expect("write dot");
    println!(
        "\nwrote esnet_load.dot ({} bytes) — render with `dot -Tsvg`",
        dot.len()
    );
}
